"""Multi-query optimization: sharing across concurrent queries.

The paper's motivating scenario (Section I) is Azure IoT Central:
*multiple* dashboard queries — often 5 to 10 — over the *same* device
stream, each with its own window sizes.  The paper optimizes one query
at a time; this module extends the framework to a query *workload*:

1. Queries are grouped by (aggregate function, coverage semantics) —
   sub-aggregates are only interchangeable within such a group.
2. Each group's window sets are merged into one combined window set
   (duplicates collapse: two dashboards asking for the same hourly MIN
   share one operator outright).
3. The combined set is optimized with Algorithms 1 + 3, so coverage
   *between* queries is exploited and one factor window can serve many
   queries.
4. The merged min-cost WCG is rewritten into one shared plan per group,
   with a routing table mapping every (query, window) back to its
   operator.

The result is compared against per-query optimization: the shared plan
is never worse, because the merged WCG's provider options are a
superset of every individual query's.

Two consumption modes share the same group machinery:

* :func:`optimize_workload` — the original *batch* mode: a frozen set
  of queries optimized in one shot (the paper's evaluation setting);
* :class:`IncrementalWorkload` — the *diff* mode a live
  :class:`~repro.runtime.QuerySession` drives: queries register and
  deregister one at a time, and each mutation re-optimizes **only the
  affected (aggregate, semantics) group**, leaving every other group's
  plan object untouched.  The (query, window) → operator-window
  routing table is stable across generations: merged operators keep
  their windows, so a re-optimization changes *providers*, never the
  operator a result is read from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..aggregates.base import AggregateFunction
from ..errors import CostModelError
from ..plans.nodes import LogicalPlan
from ..windows.coverage import CoverageSemantics
from ..windows.window import Window, WindowSet
from .cost import CostModel, MinCostWCG
from .optimizer import optimize
from .planner import PlannedWindows, plan_windows


@dataclass(frozen=True)
class Query:
    """One query of the workload: an aggregate over a window set."""

    name: str
    windows: WindowSet
    aggregate: AggregateFunction

    def __post_init__(self) -> None:
        if len(self.windows) == 0:
            raise CostModelError(f"query {self.name!r} has no windows")


@dataclass
class SharedGroup:
    """One (aggregate, semantics) group of the optimized workload.

    All costs are normalized to the *workload* hyper-period (the lcm of
    every window range in the workload): plan costs are periodic, so
    cost over ``k·R`` is exactly ``k`` times the cost over ``R``, which
    makes costs of different window sets comparable and additive.
    """

    aggregate: AggregateFunction
    semantics: "CoverageSemantics | None"
    queries: list[Query]
    combined: "WindowSet | None" = None
    gmin: "MinCostWCG | None" = None
    plan: "LogicalPlan | None" = None
    shared_cost: int = 0  # over the workload hyper-period

    def routing(self) -> dict[tuple[str, Window], Window]:
        """(query name, requested window) → operator window.

        Identity mapping today (merged operators keep their windows),
        but gives callers a stable contract if future versions remap.
        """
        table = {}
        for query in self.queries:
            for window in query.windows:
                table[(query.name, window)] = window
        return table


@dataclass
class WorkloadPlan:
    """Result of optimizing a whole query workload.

    All costs are over one workload hyper-period (``period``).
    """

    groups: list[SharedGroup] = field(default_factory=list)
    independent_cost: int = 0
    baseline_cost: int = 0
    period: int = 0

    @property
    def shared_cost(self) -> int:
        return sum(group.shared_cost for group in self.groups)

    @property
    def sharing_gain(self) -> float:
        """Per-query-optimal cost over shared cost (≥ 1)."""
        if self.shared_cost == 0:
            return float("inf")
        return self.independent_cost / self.shared_cost

    @property
    def total_speedup(self) -> float:
        """Naive (unoptimized, unshared) cost over shared cost."""
        if self.shared_cost == 0:
            return float("inf")
        return self.baseline_cost / self.shared_cost

    def summary(self) -> str:
        lines = [
            f"queries            : "
            f"{sum(len(g.queries) for g in self.groups)}"
            f" in {len(self.groups)} shared group(s)",
            f"naive cost         : {self.baseline_cost}",
            f"per-query optimized: {self.independent_cost}",
            f"shared workload    : {self.shared_cost}",
            f"gain from sharing  : {self.sharing_gain:.2f}x",
            f"total speedup      : {self.total_speedup:.2f}x",
        ]
        return "\n".join(lines)


#: A workload group identity: (aggregate name, coverage semantics).
GroupKey = tuple[str, "CoverageSemantics | None"]


def _group_key(query: Query) -> GroupKey:
    semantics = query.aggregate.semantics
    return (query.aggregate.name, semantics)


def _merge_window_sets(queries: Sequence[Query]) -> WindowSet:
    merged = WindowSet()
    for query in queries:
        for window in query.windows:
            if window not in merged:
                merged.add(window)
    return merged


def plan_shared_group(
    members: Sequence[Query],
    event_rate: int = 1,
    enable_factor_windows: bool = True,
) -> tuple[SharedGroup, PlannedWindows]:
    """Optimize one (aggregate, semantics) group through the shared
    :mod:`~repro.core.planner` pipeline.

    Returns the group (costs over the *group* hyper-period — batch mode
    rescales them to the workload period) plus the full
    :class:`~repro.core.planner.PlannedWindows`, whose ``best_plan`` is
    executable even for holistic groups (the original independent plan,
    Section III-A).
    """
    aggregate = members[0].aggregate
    semantics = aggregate.semantics
    combined = _merge_window_sets(members)
    planned = plan_windows(
        combined,
        aggregate,
        event_rate=event_rate,
        enable_factor_windows=enable_factor_windows,
        label=f"shared[{aggregate.name}]",
    )
    group = SharedGroup(
        aggregate=aggregate,
        semantics=semantics,
        queries=list(members),
        combined=combined,
    )
    if semantics is not None:
        group.gmin = planned.optimization.best
        group.plan = planned.best_plan
        group.shared_cost = group.gmin.total_cost
    return group, planned


def optimize_workload(
    queries: Sequence[Query],
    event_rate: int = 1,
    enable_factor_windows: bool = True,
) -> WorkloadPlan:
    """Optimize a workload of concurrent queries with cross-query
    sharing.

    Also computes the two reference costs used in reports: the naive
    cost (every window of every query evaluated from raw events, with
    duplicate windows across queries each paying full price, as
    independent deployments would) and the per-query-optimized cost
    (each query optimized alone; duplicates still unshared).
    """
    if not queries:
        raise CostModelError("workload must contain at least one query")
    names = [q.name for q in queries]
    if len(set(names)) != len(names):
        raise CostModelError("query names must be unique")

    model = CostModel(event_rate=event_rate)
    workload = WorkloadPlan()

    # Common accounting period: every per-query and per-group cost is
    # scaled from its own hyper-period up to this one, so the sums are
    # apples-to-apples (plan costs are periodic in R).
    import math

    all_ranges = [w.range for q in queries for w in q.windows]
    workload_period = math.lcm(*all_ranges)
    workload.period = workload_period

    groups: dict[tuple, list[Query]] = {}
    for query in queries:
        groups.setdefault(_group_key(query), []).append(query)

    for (_, semantics), members in groups.items():
        aggregate = members[0].aggregate
        group, _ = plan_shared_group(
            members,
            event_rate=event_rate,
            enable_factor_windows=enable_factor_windows,
        )
        group_baseline = 0
        for query in members:
            scale = workload_period // model.hyper_period(query.windows)
            query_baseline = scale * model.baseline_cost(query.windows)
            workload.baseline_cost += query_baseline
            group_baseline += query_baseline
            result = optimize(
                query.windows,
                aggregate,
                event_rate=event_rate,
                enable_factor_windows=enable_factor_windows,
            )
            workload.independent_cost += scale * result.best_cost
        if semantics is not None:
            group_scale = workload_period // group.gmin.period
            group.shared_cost = group_scale * group.gmin.total_cost
        else:
            group.shared_cost = group_baseline
        workload.groups.append(group)
    return workload


# ----------------------------------------------------------------------
# Incremental mode: the workload as a living object
# ----------------------------------------------------------------------
@dataclass
class WorkloadDelta:
    """What one register/deregister/re-rate mutation changed.

    A live session consumes deltas as switch instructions: ``plan`` is
    the group's new executable plan (``None`` when the group retired
    with its last query), and ``provider_change`` says whether the
    window→provider map actually differs — when it does not, operators
    keep running untouched and no plan switch happens at all.
    """

    generation: int
    key: GroupKey
    group: "SharedGroup | None"
    plan: "LogicalPlan | None"
    reason: str  # "register" | "deregister" | "rate"
    provider_change: bool

    @property
    def retired(self) -> bool:
        return self.group is None


def _plan_shape(plan: "LogicalPlan | None"):
    """The part of a plan that forces an operator change: the
    window→provider map plus which windows are user-facing (a factor
    window promoted to a user window needs its operator re-issued with
    an emission sink, and vice versa)."""
    if plan is None:
        return None
    return (
        plan.provider_map(),
        frozenset(node.window for node in plan.user_window_nodes()),
    )


class IncrementalWorkload:
    """A query workload that changes while it runs.

    Maintains one optimized :class:`SharedGroup` per (aggregate,
    semantics) key under three mutations — :meth:`register`,
    :meth:`deregister`, and :meth:`set_event_rate` — re-optimizing
    **only** the group a mutation touches.  Unaffected groups keep
    their exact ``SharedGroup`` objects (identity, not just equality),
    which is what lets a live session leave their operators running
    through a switch.

    The :meth:`routing` table maps every registered (query name,
    requested window) to its operator window and is stable across
    generations: re-optimizing a group rewires *providers*, never the
    window an operator is keyed by.
    """

    def __init__(
        self, event_rate: int = 1, enable_factor_windows: bool = True
    ):
        if event_rate < 1:
            raise CostModelError(f"event_rate must be >= 1, got {event_rate}")
        self.event_rate = event_rate
        self.enable_factor_windows = enable_factor_windows
        self.generation = 0
        self.queries: dict[str, Query] = {}
        self.groups: dict[GroupKey, SharedGroup] = {}
        self.planned: dict[GroupKey, PlannedWindows] = {}
        self.plans: dict[GroupKey, LogicalPlan] = {}

    def __len__(self) -> int:
        return len(self.queries)

    def group_of(self, name: str) -> GroupKey:
        query = self.queries.get(name)
        if query is None:
            raise CostModelError(f"no registered query named {name!r}")
        return _group_key(query)

    def _rebuild_group(self, key: GroupKey, reason: str) -> WorkloadDelta:
        """Re-optimize one group from its current members."""
        members = [
            q for q in self.queries.values() if _group_key(q) == key
        ]
        old_shape = _plan_shape(self.plans.get(key))
        self.generation += 1
        if not members:
            self.groups.pop(key, None)
            self.planned.pop(key, None)
            self.plans.pop(key, None)
            return WorkloadDelta(
                generation=self.generation,
                key=key,
                group=None,
                plan=None,
                reason=reason,
                provider_change=old_shape is not None,
            )
        group, planned = plan_shared_group(
            members,
            event_rate=self.event_rate,
            enable_factor_windows=self.enable_factor_windows,
        )
        plan = planned.best_plan
        self.groups[key] = group
        self.planned[key] = planned
        self.plans[key] = plan
        return WorkloadDelta(
            generation=self.generation,
            key=key,
            group=group,
            plan=plan,
            reason=reason,
            provider_change=_plan_shape(plan) != old_shape,
        )

    def register(self, query: Query) -> WorkloadDelta:
        """Add one query; re-optimize only its group."""
        if query.name in self.queries:
            raise CostModelError(
                f"query name {query.name!r} is already registered"
            )
        self.queries[query.name] = query
        return self._rebuild_group(_group_key(query), "register")

    def deregister(self, name: str) -> WorkloadDelta:
        """Remove one query; re-optimize (or retire) only its group."""
        key = self.group_of(name)
        del self.queries[name]
        return self._rebuild_group(key, "deregister")

    def set_event_rate(self, event_rate: int) -> list[WorkloadDelta]:
        """Re-price every group at a new rate.

        Returns one delta per group; only those with
        ``provider_change=True`` require a plan switch — the rest keep
        byte-identical provider maps and their operators keep running.
        """
        if event_rate < 1:
            raise CostModelError(
                f"event_rate must be >= 1, got {event_rate}"
            )
        if event_rate == self.event_rate:
            return []
        self.event_rate = event_rate
        return [
            self._rebuild_group(key, "rate") for key in list(self.groups)
        ]

    def routing(self) -> "dict[tuple[str, Window], Window]":
        """(query name, requested window) → operator window, workload-wide."""
        table: dict[tuple[str, Window], Window] = {}
        for group in self.groups.values():
            table.update(group.routing())
        return table

    def as_batch(self) -> WorkloadPlan:
        """The equivalent one-shot optimization of the current queries
        (the reference the session-equivalence tests compare against)."""
        return optimize_workload(
            list(self.queries.values()),
            event_rate=self.event_rate,
            enable_factor_windows=self.enable_factor_windows,
        )
