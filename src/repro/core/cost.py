"""The cost model and Algorithm 1 (min-cost WCG) — Section III-B.

Costs are counted in *processed inputs* over one hyper-period
``R = lcm(r1, ..., rn)`` of the user windows, assuming a steady input
event rate ``η``:

* reading raw events costs ``η * r`` per window instance;
* reading a provider's sub-aggregates costs ``M(Wi, W')`` per instance
  (Observation 1), where ``M`` is the covering multiplier;
* a window fires ``n = 1 + (R - r)/s`` instances per hyper-period.

The virtual root ``S`` stands for the raw stream: edges from ``S``
price as raw reads and ``S`` itself costs nothing (Example 7 counts
``C' = c2 + c3 + c4`` only).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from ..errors import CostModelError
from ..windows.coverage import covering_multiplier
from ..windows.window import VIRTUAL_ROOT, Window
from .wcg import WindowCoverageGraph


@dataclass(frozen=True)
class CostModel:
    """Paper cost model parameterized by the input event rate ``η``."""

    event_rate: int = 1

    def __post_init__(self) -> None:
        if self.event_rate < 1:
            raise CostModelError(
                f"event rate must be >= 1, got {self.event_rate}"
            )

    # ------------------------------------------------------------------
    # Primitive quantities
    # ------------------------------------------------------------------
    def hyper_period(self, windows: Iterable[Window]) -> int:
        """``R = lcm`` of the given windows' ranges."""
        ranges = [w.range for w in windows if w is not VIRTUAL_ROOT]
        if not ranges:
            raise CostModelError("hyper-period of an empty window collection")
        return math.lcm(*ranges)

    def recurrence_count(self, window: Window, period: int) -> int:
        """``n_i`` — instances of ``window`` per hyper-period (Eq. 1)."""
        return window.recurrence_count(period)

    def raw_instance_cost(self, window: Window) -> int:
        """``µ_i = η * r_i`` — instance cost without sharing."""
        return self.event_rate * window.range

    def instance_cost(self, window: Window, provider: "Window | None") -> int:
        """Instance cost given the chosen ``provider`` (Observation 1).

        ``provider is None`` or the virtual root means raw-event input.
        """
        if provider is None or provider is VIRTUAL_ROOT:
            return self.raw_instance_cost(window)
        return covering_multiplier(window, provider)

    def window_cost(
        self, window: Window, provider: "Window | None", period: int
    ) -> int:
        """``c_i = n_i * µ_i`` for one window over the hyper-period."""
        n = self.recurrence_count(window, period)
        return n * self.instance_cost(window, provider)

    def baseline_cost(self, windows: Iterable[Window]) -> int:
        """Total cost of the original plan: every window reads raw."""
        window_list = [w for w in windows if w is not VIRTUAL_ROOT]
        period = self.hyper_period(window_list)
        return sum(self.window_cost(w, None, period) for w in window_list)


@dataclass
class MinCostWCG:
    """Result of Algorithm 1: the min-cost WCG ``Gmin``.

    ``provider[w]`` is the single chosen provider of ``w`` (``None`` for
    raw input).  ``graph`` retains only the winning edges, so it is a
    forest (Theorem 7).  ``costs`` are per-window costs over the
    hyper-period ``period``; ``total_cost`` excludes the virtual root
    but includes factor windows.
    """

    graph: WindowCoverageGraph
    provider: dict[Window, "Window | None"]
    costs: dict[Window, int]
    period: int
    event_rate: int
    baseline: int = 0
    factor_windows: tuple[Window, ...] = field(default_factory=tuple)

    @property
    def total_cost(self) -> int:
        return sum(
            cost for window, cost in self.costs.items()
            if window is not VIRTUAL_ROOT
        )

    @property
    def predicted_speedup(self) -> float:
        """Paper's ``γ_C``: baseline cost over optimized cost."""
        total = self.total_cost
        if total == 0:
            return float("inf")
        return self.baseline / total

    def consumers_of(self, window: Window) -> tuple[Window, ...]:
        return self.graph.consumers_of(window)

    def reads_raw(self, window: Window) -> bool:
        """True when ``window`` aggregates raw input events in Gmin."""
        chosen = self.provider.get(window)
        return chosen is None or chosen is VIRTUAL_ROOT


def minimize_cost(
    graph: WindowCoverageGraph,
    model: CostModel,
    period: "int | None" = None,
) -> MinCostWCG:
    """Algorithm 1: find the min-cost WCG.

    For each window, initialize with the raw-read cost, then revise
    against every incoming edge (Observation 1); finally drop every
    incoming edge except the winner.  Ties break toward the provider
    with the largest range (fewest reads ⇒ shallowest merge fan-in),
    then lexicographically, so results are deterministic.
    """
    user_windows = graph.user_windows
    if not user_windows:
        raise CostModelError("cannot minimize cost of an empty window set")
    if period is None:
        period = model.hyper_period(user_windows)
    result = graph.copy()
    provider: dict[Window, Window | None] = {}
    costs: dict[Window, int] = {}

    for window in graph.nodes:
        if window is VIRTUAL_ROOT:
            provider[window] = None
            costs[window] = 0
            continue
        n = model.recurrence_count(window, period)
        best_cost = n * model.raw_instance_cost(window)
        best_provider: Window | None = None
        for candidate in graph.providers_of(window):
            cost = n * model.instance_cost(window, candidate)
            better = cost < best_cost
            tie = (
                cost == best_cost
                and best_provider is not None
                and candidate is not VIRTUAL_ROOT
                and (candidate.range, -candidate.slide)
                > (best_provider.range, -best_provider.slide)
            )
            if better or tie:
                best_cost = cost
                best_provider = candidate
        if best_provider is VIRTUAL_ROOT:
            best_provider = None
        provider[window] = best_provider
        costs[window] = best_cost
        for candidate in graph.providers_of(window):
            keep = (
                candidate is best_provider
                or (best_provider is None and candidate is VIRTUAL_ROOT)
            )
            if not keep:
                result.remove_edge(candidate, window)

    baseline = model.baseline_cost(user_windows)
    return MinCostWCG(
        graph=result,
        provider=provider,
        costs=costs,
        period=period,
        event_rate=model.event_rate,
        baseline=baseline,
        factor_windows=graph.factor_windows,
    )


def prune_useless_factors(result: MinCostWCG) -> MinCostWCG:
    """Drop factor windows no surviving consumer reads from.

    Rebuilding the full coverage graph before Algorithm 1 (see
    DESIGN.md §3) can leave inserted factor windows that ended up
    feeding nobody; they would inflate the plan cost for no benefit.
    Removal is iterative because factors can chain.
    """
    graph = result.graph
    changed = True
    while changed:
        changed = False
        for factor in graph.factor_windows:
            if graph.out_degree(factor) == 0:
                graph.remove_node(factor)
                result.costs.pop(factor, None)
                result.provider.pop(factor, None)
                changed = True
    result.factor_windows = graph.factor_windows
    return result
