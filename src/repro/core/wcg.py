"""The Window Coverage Graph (WCG) — Section II-C and IV-A.

Nodes are windows; a directed edge ``(provider, consumer)`` exists when
``consumer <= provider`` under the chosen coverage semantics, i.e. the
consumer may be computed by aggregating the provider's sub-aggregates.

The *augmented* WCG additionally contains the virtual tumbling root
``S⟨1, 1⟩``, with an edge to every window that has no other provider.
``S`` stands for the raw input stream itself: it is never materialized
and its cost is never charged to a plan (see DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import InvalidWindowError
from ..windows.coverage import CoverageSemantics, strictly_relates
from ..windows.window import VIRTUAL_ROOT, Window, WindowSet


@dataclass
class WindowCoverageGraph:
    """A mutable WCG with user, factor, and virtual-root nodes.

    Attributes
    ----------
    semantics:
        Which coverage relation edges encode.
    _consumers / _providers:
        Forward and reverse adjacency (provider → consumers and
        consumer → providers).
    _factors:
        The subset of nodes that are factor windows (Definition 6) —
        auxiliary windows whose results are not exposed to the user.
    """

    semantics: CoverageSemantics
    _consumers: dict[Window, set[Window]] = field(default_factory=dict)
    _providers: dict[Window, set[Window]] = field(default_factory=dict)
    _factors: set[Window] = field(default_factory=set)
    _order: list[Window] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        windows: "WindowSet | Iterable[Window]",
        semantics: CoverageSemantics,
        factors: Iterable[Window] = (),
        augment: bool = True,
    ) -> "WindowCoverageGraph":
        """Construct the WCG for ``windows`` (O(n²), Section II-C).

        ``factors`` are added as factor nodes participating in edges
        exactly like user windows.  With ``augment=True`` the virtual
        root ``S`` is added per Section IV-A.
        """
        graph = cls(semantics=semantics)
        for window in windows:
            graph.add_node(window)
        for factor in factors:
            graph.add_node(factor, is_factor=True)
        graph._rebuild_edges()
        if augment:
            graph.augment()
        return graph

    def add_node(self, window: Window, is_factor: bool = False) -> None:
        """Add a node without edges; duplicates are rejected."""
        if window in self._consumers:
            raise InvalidWindowError(f"{window} already in WCG")
        self._consumers[window] = set()
        self._providers[window] = set()
        self._order.append(window)
        if is_factor:
            self._factors.add(window)

    def add_edge(self, provider: Window, consumer: Window) -> None:
        """Add edge ``(provider, consumer)``; both nodes must exist."""
        if provider not in self._consumers or consumer not in self._consumers:
            raise InvalidWindowError("edge endpoints must be WCG nodes")
        self._consumers[provider].add(consumer)
        self._providers[consumer].add(provider)

    def remove_edge(self, provider: Window, consumer: Window) -> None:
        self._consumers[provider].discard(consumer)
        self._providers[consumer].discard(provider)

    def _rebuild_edges(self) -> None:
        """Recompute all coverage edges among current nodes."""
        for window in self._order:
            self._consumers[window].clear()
            self._providers[window].clear()
        for consumer in self._order:
            for provider in self._order:
                if consumer is VIRTUAL_ROOT or provider is VIRTUAL_ROOT:
                    continue
                if strictly_relates(consumer, provider, self.semantics):
                    self.add_edge(provider, consumer)

    def augment(self) -> None:
        """Add the virtual root ``S⟨1,1⟩`` (Section IV-A).

        ``S`` gains an edge to every window currently lacking a
        provider.  If a user window equal to ``S`` already exists it
        plays the root's role and nothing is added.
        """
        if VIRTUAL_ROOT in self._consumers:
            return
        orphans = [w for w in self._order if not self._providers[w]]
        self.add_node(VIRTUAL_ROOT)
        for window in orphans:
            self.add_edge(VIRTUAL_ROOT, window)

    def insert_factor(self, factor: Window) -> None:
        """Insert ``factor`` and connect it with full coverage edges.

        This is a superset of the Figure-9 edge set (provider → factor →
        downstream): we connect the factor to *every* related node, so
        the subsequent cost minimization can only do better.  The
        virtual root connects to the factor when nothing else covers it.
        """
        self.add_node(factor, is_factor=True)
        has_provider = False
        for other in self._order:
            if other is factor or other is VIRTUAL_ROOT:
                continue
            if strictly_relates(factor, other, self.semantics):
                self.add_edge(other, factor)
                has_provider = True
            if strictly_relates(other, factor, self.semantics):
                self.add_edge(factor, other)
        if not has_provider and VIRTUAL_ROOT in self._consumers:
            self.add_edge(VIRTUAL_ROOT, factor)

    def remove_node(self, window: Window) -> None:
        """Remove ``window`` and all incident edges."""
        for consumer in list(self._consumers[window]):
            self.remove_edge(window, consumer)
        for provider in list(self._providers[window]):
            self.remove_edge(provider, window)
        del self._consumers[window]
        del self._providers[window]
        self._order.remove(window)
        self._factors.discard(window)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[Window, ...]:
        """All nodes in insertion order (root and factors included)."""
        return tuple(self._order)

    @property
    def user_windows(self) -> tuple[Window, ...]:
        """Nodes that are neither factor windows nor the virtual root."""
        return tuple(
            w for w in self._order
            if w not in self._factors and w is not VIRTUAL_ROOT
        )

    @property
    def factor_windows(self) -> tuple[Window, ...]:
        return tuple(w for w in self._order if w in self._factors)

    @property
    def edges(self) -> tuple[tuple[Window, Window], ...]:
        """All edges as ``(provider, consumer)`` pairs, deterministic."""
        result = []
        for provider in self._order:
            for consumer in sorted(self._consumers[provider]):
                result.append((provider, consumer))
        return tuple(result)

    def is_factor(self, window: Window) -> bool:
        return window in self._factors

    def has_node(self, window: Window) -> bool:
        return window in self._consumers

    def has_edge(self, provider: Window, consumer: Window) -> bool:
        return consumer in self._consumers.get(provider, ())

    def consumers_of(self, window: Window) -> tuple[Window, ...]:
        """Downstream windows of ``window`` (its out-neighbours)."""
        return tuple(sorted(self._consumers[window]))

    def providers_of(self, window: Window) -> tuple[Window, ...]:
        """Windows that can feed ``window`` (its in-neighbours)."""
        return tuple(sorted(self._providers[window]))

    def out_degree(self, window: Window) -> int:
        return len(self._consumers[window])

    def in_degree(self, window: Window) -> int:
        return len(self._providers[window])

    def is_forest(self) -> bool:
        """Theorem 7 check: every node has at most one provider."""
        return all(len(p) <= 1 for p in self._providers.values())

    def copy(self) -> "WindowCoverageGraph":
        clone = WindowCoverageGraph(semantics=self.semantics)
        clone._order = list(self._order)
        clone._factors = set(self._factors)
        clone._consumers = {w: set(c) for w, c in self._consumers.items()}
        clone._providers = {w: set(p) for w, p in self._providers.items()}
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        edges = ", ".join(f"{p.label}->{c.label}" for p, c in self.edges)
        return f"WCG({self.semantics}; {len(self._order)} nodes; {edges})"
