"""Factor windows — Section IV.

A *factor window* (Definition 6) is an auxiliary window not in the user
query that can nevertheless reduce total cost by sitting between a
provider ``W`` and its downstream windows ``W1..WK`` (Figure 9).

This module implements:

* the benefit ``δf`` of inserting a factor window (Equation 2),
* Algorithm 2 — candidate generation/selection under ``covered_by``,
* Algorithm 4 — the constant-time benefit test under ``partitioned_by``
  (Theorem 8),
* Theorem 9 — the comparator for independent tumbling candidates,
* Algorithm 5 — candidate generation/selection under ``partitioned_by``.

All arithmetic is exact (integers / ``fractions.Fraction``); no floats.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import Iterable, Sequence

from ..windows.coverage import (
    CoverageSemantics,
    covered_by,
    covering_multiplier,
    partitioned_by,
    strictly_relates,
)
from ..windows.window import VIRTUAL_ROOT, Window
from .cost import CostModel


@dataclass(frozen=True)
class FactorCandidate:
    """A candidate factor window together with its computed benefit."""

    window: Window
    benefit: int

    def __lt__(self, other: "FactorCandidate") -> bool:  # pragma: no cover
        return (self.benefit, self.window) < (other.benefit, other.window)


@lru_cache(maxsize=4096)
def _divisors(value: int) -> tuple[int, ...]:
    """All positive divisors of ``value``, ascending.

    Memoized: the optimizer re-derives divisors of the same gcds for
    every candidate during factor search (``bench_fig12`` measures the
    overhead), and divisor sets are tiny and immutable.
    """
    small, large = [], []
    d = 1
    while d * d <= value:
        if value % d == 0:
            small.append(d)
            if d != value // d:
                large.append(value // d)
        d += 1
    return tuple(small + large[::-1])


def _read_cost(
    consumer: Window, provider: Window, model: CostModel
) -> int:
    """Per-instance read cost of ``consumer`` from ``provider``.

    Reading from the virtual root means reading raw events at rate η.
    """
    if provider is VIRTUAL_ROOT:
        return model.raw_instance_cost(consumer)
    return covering_multiplier(consumer, provider)


def factor_benefit(
    target: Window,
    downstream: Sequence[Window],
    factor: Window,
    period: int,
    model: CostModel,
) -> int:
    """``δf = c' − c`` — the cost saved by inserting ``factor``.

    ``c'`` is the cost of the Figure-9 configuration without the factor
    (each ``Wj`` reads from ``target``), ``c`` the cost with it (each
    ``Wj`` reads from ``factor``, which reads from ``target``).  The
    cost of ``target`` itself cancels out.  This is Equation 2 in
    expanded (pre-simplification) form, generalized to ``η > 1`` when
    ``target`` is the virtual root.
    """
    without = 0
    with_factor = 0
    for consumer in downstream:
        n = model.recurrence_count(consumer, period)
        without += n * _read_cost(consumer, target, model)
        with_factor += n * _read_cost(consumer, factor, model)
    n_factor = model.recurrence_count(factor, period)
    with_factor += n_factor * _read_cost(factor, target, model)
    return without - with_factor


# ----------------------------------------------------------------------
# Algorithm 2 — "covered by" semantics
# ----------------------------------------------------------------------
def generate_candidates_covered(
    target: Window,
    downstream: Sequence[Window],
    exclude: Iterable[Window] = (),
) -> list[Window]:
    """Candidate factor windows per Algorithm 2, lines 1-11.

    Eligible slides ``sf`` divide ``sd = gcd(s1..sK)`` and are multiples
    of ``s_target``; eligible ranges ``rf <= rmin`` are multiples of
    ``sf``.  Candidates must satisfy the Figure-9 coverage constraints
    ``Wf <= W`` and ``Wj <= Wf``, and must not duplicate an existing
    window (Definition 6).
    """
    if not downstream:
        return []
    excluded = set(exclude) | {target, *downstream}
    slide_gcd = math.gcd(*(w.slide for w in downstream))
    r_min = min(w.range for w in downstream)
    target_slide = target.slide
    candidates: list[Window] = []
    for sf in _divisors(slide_gcd):
        if sf % target_slide != 0:
            continue
        for rf in range(sf, r_min + 1, sf):
            factor = Window(rf, sf)
            if factor in excluded:
                continue
            if not covered_by(factor, target):
                continue
            if all(covered_by(w, factor) for w in downstream):
                candidates.append(factor)
    return candidates


def find_best_factor_covered(
    target: Window,
    downstream: Sequence[Window],
    period: int,
    model: CostModel,
    exclude: Iterable[Window] = (),
) -> "FactorCandidate | None":
    """Algorithm 2: the best factor window under ``covered_by``.

    Returns ``None`` when no candidate has strictly positive benefit
    (the paper initializes ``δmax = 0`` and requires ``δf > δmax``).
    """
    best: FactorCandidate | None = None
    for factor in generate_candidates_covered(target, downstream, exclude):
        benefit = factor_benefit(target, downstream, factor, period, model)
        if benefit > 0 and (best is None or benefit > best.benefit):
            best = FactorCandidate(factor, benefit)
    return best


# ----------------------------------------------------------------------
# Algorithm 4 + Theorem 8 — benefit test under "partitioned by"
# ----------------------------------------------------------------------
def _lambda(downstream: Sequence[Window], period: int) -> Fraction:
    """``λ = Σ_j n_j / m_j`` (Equation 4)."""
    total = Fraction(0)
    for window in downstream:
        n = window.recurrence_count(period)
        m = Fraction(period, window.range)
        total += Fraction(n) / m
    return total


def is_beneficial_partitioned(
    factor: Window,
    target: Window,
    downstream: Sequence[Window],
    period: int,
) -> bool:
    """Algorithm 4: does a tumbling ``factor`` between tumbling
    ``target`` and ``downstream`` reduce total cost?

    * ``K >= 2`` → yes: at least one downstream window benefits.
    * ``K == 1`` with a tumbling downstream (``k1 == 1``) → no: the
      factor just relays the same sub-aggregates.
    * ``K == 1``, hopping downstream: yes when ``k1 >= 3`` and
      ``m1 >= 3``; otherwise test ``rf/rW >= λ/(λ−1)`` exactly.
    """
    if len(downstream) >= 2:
        return True
    if not downstream:
        return False
    only = downstream[0]
    k1 = only.instances_per_event
    if k1 == 1:
        return False
    m1 = Fraction(period, only.range)
    if k1 >= 3 and m1 >= 3:
        return True
    lam = _lambda(downstream, period)
    if lam <= 1:
        return False
    ratio = Fraction(factor.range, target.range)
    return ratio >= lam / (lam - 1)


def prefer_candidate(
    left: Window,
    right: Window,
    target: Window,
    downstream: Sequence[Window],
    period: int,
) -> bool:
    """Theorem 9: ``cost(left) <= cost(right)`` for independent tumbling
    candidates ``left``/``right`` over tumbling ``target``.

    The paper states the condition as
    ``rf / r'f >= (λ − rf/rW) / (λ − r'f/rW)``; we evaluate the
    equivalent pre-division form
    ``λ − rf/rW <= (rf/r'f) · (λ − r'f/rW)``,
    which avoids the sign flip when ``λ < r'f/rW`` (routine whenever the
    target is the virtual root, where ``rW = 1``).
    """
    lam = _lambda(downstream, period)
    r_w = target.range
    lhs = lam - Fraction(left.range, r_w)
    rhs = Fraction(left.range, right.range) * (
        lam - Fraction(right.range, r_w)
    )
    return lhs <= rhs


# ----------------------------------------------------------------------
# Algorithm 5 — "partitioned by" semantics
# ----------------------------------------------------------------------
def generate_candidates_partitioned(
    target: Window,
    downstream: Sequence[Window],
    exclude: Iterable[Window] = (),
) -> list[Window]:
    """Candidate *tumbling* factor windows per Algorithm 5, lines 3-12.

    ``rf`` must divide ``rd = gcd(r1..rK)`` and be a multiple of
    ``r_target``.  Beyond the paper we also verify full partitioned-by
    coverage of each downstream window (``s_j % rf == 0``), which only
    matters when downstream windows hop — a strict-superset safety
    check (see DESIGN.md §3).
    """
    if not downstream:
        return []
    excluded = set(exclude) | {target, *downstream}
    range_gcd = math.gcd(*(w.range for w in downstream))
    if range_gcd == target.range:
        return []
    candidates: list[Window] = []
    for rf in _divisors(range_gcd):
        if rf % target.range != 0 or rf == target.range:
            continue
        factor = Window(rf, rf)
        if factor in excluded:
            continue
        if not partitioned_by(factor, target):
            continue
        if all(partitioned_by(w, factor) for w in downstream):
            candidates.append(factor)
    return candidates


def prune_dependent_candidates(candidates: Sequence[Window]) -> list[Window]:
    """Algorithm 5, lines 14-16: drop any candidate that covers another.

    If ``W'f <= Wf`` (``W'f`` covered by ``Wf``), ``Wf`` is dominated:
    relaying through the finer window cannot beat using the coarser one
    directly (Example 8 keeps W(10,10) and drops W(5,5), W(2,2)).
    """
    kept = []
    for factor in candidates:
        dominated = any(
            other != factor and covered_by(other, factor)
            for other in candidates
        )
        if not dominated:
            kept.append(factor)
    return kept


def find_best_factor_partitioned(
    target: Window,
    downstream: Sequence[Window],
    period: int,
    model: CostModel,
    exclude: Iterable[Window] = (),
) -> "FactorCandidate | None":
    """Algorithm 5: the best tumbling factor under ``partitioned_by``."""
    candidates = generate_candidates_partitioned(target, downstream, exclude)
    beneficial = [
        factor for factor in candidates
        if is_beneficial_partitioned(factor, target, downstream, period)
    ]
    independent = prune_dependent_candidates(beneficial)
    best: Window | None = None
    for factor in independent:
        if best is None or prefer_candidate(
            factor, best, target, downstream, period
        ):
            best = factor
    if best is None:
        return None
    benefit = factor_benefit(target, downstream, best, period, model)
    if benefit <= 0:
        return None
    return FactorCandidate(best, benefit)


def find_best_factor(
    target: Window,
    downstream: Sequence[Window],
    period: int,
    model: CostModel,
    semantics: CoverageSemantics,
    exclude: Iterable[Window] = (),
) -> "FactorCandidate | None":
    """Dispatch to Algorithm 2 or Algorithm 5 based on semantics."""
    if semantics is CoverageSemantics.PARTITIONED_BY:
        return find_best_factor_partitioned(
            target, downstream, period, model, exclude
        )
    return find_best_factor_covered(target, downstream, period, model, exclude)


def direct_downstream(
    graph_nodes: Sequence[Window],
    target: Window,
    semantics: CoverageSemantics,
) -> list[Window]:
    """Windows in ``graph_nodes`` that ``target`` can feed directly."""
    return [
        w for w in graph_nodes
        if w is not VIRTUAL_ROOT and strictly_relates(w, target, semantics)
    ]


# ----------------------------------------------------------------------
# Global benefit — the regression-safe insertion gate (DESIGN.md §3)
# ----------------------------------------------------------------------
def current_instance_costs(graph, model: CostModel) -> dict[Window, int]:
    """Per-window minimum instance cost achievable in ``graph`` now.

    For each node: the cheaper of reading raw events and reading the
    best in-graph provider (Observation 1 applied to the whole graph).
    """
    costs: dict[Window, int] = {}
    for window in graph.nodes:
        if window is VIRTUAL_ROOT:
            continue
        best = model.raw_instance_cost(window)
        for provider in graph.providers_of(window):
            best = min(best, model.instance_cost(window, provider))
        costs[window] = best
    return costs


def global_factor_benefit(
    graph,
    factor: Window,
    period: int,
    model: CostModel,
) -> int:
    """Exact total-cost change of inserting ``factor`` into ``graph``.

    Equation 2 prices a factor assuming its downstream windows read
    from the insertion target; when they already have cheaper providers
    that over-estimates the gain and Algorithm 3 can *regress* (our
    property tests found concrete cases).  This variant prices the
    candidate against each window's *current best* instance cost, so a
    positive value guarantees Algorithm 1 over the expanded graph
    strictly improves.
    """
    semantics = graph.semantics
    current = current_instance_costs(graph, model)
    gain = 0
    for window in graph.nodes:
        if window is VIRTUAL_ROOT or window == factor:
            continue
        if strictly_relates(window, factor, semantics):
            multiplier = covering_multiplier(window, factor)
            if multiplier < current[window]:
                gain += window.recurrence_count(period) * (
                    current[window] - multiplier
                )
    factor_read = model.raw_instance_cost(factor)
    for provider in graph.nodes:
        if provider is VIRTUAL_ROOT or provider == factor:
            continue
        if strictly_relates(factor, provider, semantics):
            factor_read = min(
                factor_read, covering_multiplier(factor, provider)
            )
    factor_cost = factor.recurrence_count(period) * factor_read
    return gain - factor_cost
