"""Query rewriting: min-cost WCG → executable logical plan.

Implements Appendix B of the paper.  Given ``Gmin`` (a forest by
Theorem 7):

* windows without a provider read from the source's MultiCast
  (or directly from the source when unique);
* every window with downstream consumers gets a MultiCast that feeds
  both the Union (if user-facing) and its consumers;
* every user window's results reach the Union; factor windows' results
  do not (Definition 6: factor windows are invisible to users).
"""

from __future__ import annotations

from ..aggregates.base import AggregateFunction
from ..errors import PlanError
from ..plans.builder import PlanBuilder
from ..plans.nodes import LogicalPlan, PlanNode, WindowAggregateNode
from ..windows.window import VIRTUAL_ROOT, Window
from .cost import MinCostWCG


def rewrite_plan(
    gmin: MinCostWCG,
    aggregate: AggregateFunction,
    source_name: str = "Input",
    description: str = "rewritten",
) -> LogicalPlan:
    """Translate ``gmin`` into a logical plan (Appendix B).

    Raises :class:`PlanError` when ``gmin`` is not a forest — that
    would mean Algorithm 1's edge pruning was bypassed.
    """
    if not gmin.graph.is_forest():
        raise PlanError("min-cost WCG is not a forest; cannot rewrite")

    builder = PlanBuilder(source_name)
    windows = [w for w in gmin.graph.nodes if w is not VIRTUAL_ROOT]
    if not windows:
        raise PlanError("cannot rewrite an empty min-cost WCG")

    raw_readers = [w for w in windows if gmin.reads_raw(w)]
    if len(raw_readers) > 1:
        raw_upstream: PlanNode = builder.multicast(builder.source)
    else:
        raw_upstream = builder.source

    # Build aggregate nodes providers-first (the forest guarantees the
    # order exists); attach a MultiCast after any node with consumers.
    agg_nodes: dict[Window, WindowAggregateNode] = {}
    outputs: dict[Window, PlanNode] = {}
    pending = list(windows)
    while pending:
        progressed = False
        for window in list(pending):
            provider = None if gmin.reads_raw(window) else gmin.provider[window]
            if provider is not None and provider not in outputs:
                continue
            upstream = raw_upstream if provider is None else outputs[provider]
            node = builder.window_aggregate(
                window,
                aggregate,
                upstream,
                provider=provider,
                is_factor=gmin.graph.is_factor(window),
            )
            agg_nodes[window] = node
            consumers = [
                c for c in gmin.graph.consumers_of(window)
                if c is not VIRTUAL_ROOT
            ]
            needs_fanout = bool(consumers) and (
                len(consumers) + (0 if gmin.graph.is_factor(window) else 1) > 1
            )
            outputs[window] = (
                builder.multicast(node) if needs_fanout else node
            )
            pending.remove(window)
            progressed = True
        if not progressed:
            raise PlanError("provider cycle detected in min-cost WCG")

    user_outputs = [
        # User-facing results come from the aggregate node itself (or
        # its MultiCast, which forwards identical results).
        outputs[w] if not gmin.graph.is_factor(w) else None
        for w in windows
    ]
    union_inputs = [out for out in user_outputs if out is not None]
    if len(union_inputs) == 1:
        root: PlanNode = union_inputs[0]
    else:
        root = builder.union(union_inputs)
    return LogicalPlan(
        root=root,
        source=builder.source,
        aggregate=aggregate,
        semantics=gmin.graph.semantics,
        description=description,
    )
