"""Recursive-descent parser for the ASA-like SQL dialect.

Grammar (keywords case-insensitive)::

    query        := SELECT select_list FROM ident
                    [TIMESTAMP BY ident]
                    GROUP BY group_list
    select_list  := select_item (',' select_item)*
    select_item  := (agg_call | column_ref) [AS ident]
    agg_call     := IDENT '(' column_ref ')'
    group_list   := group_item (',' group_item)*
    group_item   := windows_clause | column_ref
    windows_clause := WINDOWS '(' window_def (',' window_def)* ')'
    window_def   := WINDOW '(' [STRING ','] window_spec ')' | window_spec
    window_spec  := (TUMBLING|TUMBLINGWINDOW) '(' IDENT ',' INT ')'
                  | (HOPPING|HOPPINGWINDOW|SLIDING|SLIDINGWINDOW)
                    '(' IDENT ',' INT ',' INT ')'
    column_ref   := IDENT ['(' ')'] ('.' IDENT ['(' ')'])*
"""

from __future__ import annotations

from ..errors import SqlSyntaxError
from .ast import AggregateCall, ColumnRef, Query, SelectItem, WindowDef
from .tokenizer import tokenize
from .tokens import Token, TokenType

_TUMBLING_NAMES = ("tumbling", "tumblingwindow")
_HOPPING_NAMES = ("hopping", "hoppingwindow", "sliding", "slidingwindow")


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._pos = 0

    # -- token plumbing -------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> SqlSyntaxError:
        token = self._current
        return SqlSyntaxError(
            f"{message} (found {token.text!r})", token.line, token.column
        )

    def _expect(self, token_type: TokenType) -> Token:
        if self._current.type is not token_type:
            raise self._error(f"expected {token_type}")
        return self._advance()

    def _expect_keyword(self, *names: str) -> Token:
        if not self._current.is_keyword(*names):
            raise self._error(f"expected {' or '.join(n.upper() for n in names)}")
        return self._advance()

    def _at_keyword(self, *names: str) -> bool:
        return self._current.is_keyword(*names)

    # -- grammar --------------------------------------------------------
    def parse_query(self) -> Query:
        self._expect_keyword("select")
        select_items = self._parse_select_list()
        self._expect_keyword("from")
        source = self._expect(TokenType.IDENT).text
        timestamp_column = ""
        if self._at_keyword("timestamp"):
            self._advance()
            self._expect_keyword("by")
            timestamp_column = self._expect(TokenType.IDENT).text
        self._expect_keyword("group")
        self._expect_keyword("by")
        group_keys, window_defs = self._parse_group_list()
        self._expect(TokenType.EOF)
        return Query(
            select_items=tuple(select_items),
            source=source,
            timestamp_column=timestamp_column,
            group_keys=tuple(group_keys),
            window_defs=tuple(window_defs),
        )

    def _parse_select_list(self) -> list[SelectItem]:
        items = [self._parse_select_item()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        expression = self._parse_expression()
        alias = ""
        if self._at_keyword("as"):
            self._advance()
            alias = self._expect(TokenType.IDENT).text
        return SelectItem(expression=expression, alias=alias)

    def _parse_expression(self):
        # FUNC(column) is an aggregate call when the parenthesis holds a
        # column; IDENT() with empty parens is a pseudo-column segment.
        if (
            self._current.type is TokenType.IDENT
            and self._peek().type is TokenType.LPAREN
            and self._peek(2).type is not TokenType.RPAREN
            and self._peek(2).type is not TokenType.DOT
        ):
            func = self._advance().text
            self._expect(TokenType.LPAREN)
            argument = self._parse_column_ref()
            self._expect(TokenType.RPAREN)
            return AggregateCall(function=func, argument=argument)
        return self._parse_column_ref()

    def _parse_column_ref(self) -> ColumnRef:
        parts = [self._expect(TokenType.IDENT).text]
        is_call = self._maybe_empty_parens()
        while self._current.type is TokenType.DOT:
            self._advance()
            parts.append(self._expect(TokenType.IDENT).text)
            is_call = self._maybe_empty_parens() or is_call
        return ColumnRef(parts=tuple(parts), is_call=is_call)

    def _maybe_empty_parens(self) -> bool:
        if (
            self._current.type is TokenType.LPAREN
            and self._peek().type is TokenType.RPAREN
        ):
            self._advance()
            self._advance()
            return True
        return False

    def _parse_group_list(self):
        keys: list[ColumnRef] = []
        window_defs: list[WindowDef] = []
        while True:
            if self._at_keyword("windows"):
                if window_defs:
                    raise self._error("duplicate WINDOWS clause")
                window_defs = self._parse_windows_clause()
            else:
                keys.append(self._parse_column_ref())
            if self._current.type is TokenType.COMMA:
                self._advance()
                continue
            break
        return keys, window_defs

    def _parse_windows_clause(self) -> list[WindowDef]:
        self._expect_keyword("windows")
        self._expect(TokenType.LPAREN)
        defs = [self._parse_window_def()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            defs.append(self._parse_window_def())
        self._expect(TokenType.RPAREN)
        return defs

    def _parse_window_def(self) -> WindowDef:
        if self._at_keyword("window"):
            self._advance()
            self._expect(TokenType.LPAREN)
            name = ""
            if self._current.type is TokenType.STRING:
                name = self._advance().text
                self._expect(TokenType.COMMA)
            spec = self._parse_window_spec()
            self._expect(TokenType.RPAREN)
            return WindowDef(
                kind=spec.kind,
                unit=spec.unit,
                range=spec.range,
                slide=spec.slide,
                name=name,
            )
        return self._parse_window_spec()

    def _parse_window_spec(self) -> WindowDef:
        if self._at_keyword(*_TUMBLING_NAMES):
            self._advance()
            self._expect(TokenType.LPAREN)
            unit = self._expect(TokenType.IDENT).text
            self._expect(TokenType.COMMA)
            size = int(self._expect(TokenType.INT).text)
            self._expect(TokenType.RPAREN)
            return WindowDef(kind="tumbling", unit=unit, range=size, slide=size)
        if self._at_keyword(*_HOPPING_NAMES):
            self._advance()
            self._expect(TokenType.LPAREN)
            unit = self._expect(TokenType.IDENT).text
            self._expect(TokenType.COMMA)
            size = int(self._expect(TokenType.INT).text)
            self._expect(TokenType.COMMA)
            hop = int(self._expect(TokenType.INT).text)
            self._expect(TokenType.RPAREN)
            return WindowDef(kind="hopping", unit=unit, range=size, slide=hop)
        raise self._error("expected a window specification")


def parse(text: str) -> Query:
    """Parse ``text`` into a :class:`~repro.sql.ast.Query`."""
    return Parser(text).parse_query()
