"""Tokenizer for the ASA-like SQL dialect.

Hand-rolled, position-tracking, and tolerant of the quirks the paper's
example queries exhibit (single-quoted strings like ``'20 min'``,
``--`` line comments, dotted identifiers tokenized as separate DOTs).
"""

from __future__ import annotations

from ..errors import SqlSyntaxError
from .tokens import Token, TokenType

_PUNCTUATION = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "*": TokenType.STAR,
}


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    line, column = 1, 1
    i, n = 0, len(text)

    def advance(count: int) -> None:
        nonlocal i, line, column
        for _ in range(count):
            if i < n and text[i] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            i += 1

    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            while i < n and text[i] != "\n":
                advance(1)
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[ch], ch, line, column))
            advance(1)
            continue
        if ch == "'":
            start_line, start_col = line, column
            advance(1)
            chars: list[str] = []
            while i < n and text[i] != "'":
                chars.append(text[i])
                advance(1)
            if i >= n:
                raise SqlSyntaxError(
                    "unterminated string literal", start_line, start_col
                )
            advance(1)  # closing quote
            tokens.append(
                Token(TokenType.STRING, "".join(chars), start_line, start_col)
            )
            continue
        if ch.isdigit():
            start_line, start_col = line, column
            chars = []
            while i < n and text[i].isdigit():
                chars.append(text[i])
                advance(1)
            if i < n and (text[i].isalpha() or text[i] == "_"):
                raise SqlSyntaxError(
                    f"invalid number ending in {text[i]!r}",
                    start_line,
                    start_col,
                )
            tokens.append(
                Token(TokenType.INT, "".join(chars), start_line, start_col)
            )
            continue
        if ch.isalpha() or ch == "_":
            start_line, start_col = line, column
            chars = []
            while i < n and (text[i].isalnum() or text[i] == "_"):
                chars.append(text[i])
                advance(1)
            tokens.append(
                Token(TokenType.IDENT, "".join(chars), start_line, start_col)
            )
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", line, column)

    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
