"""Token definitions for the ASA-like SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class TokenType(str, Enum):
    IDENT = "ident"
    INT = "int"
    STRING = "string"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DOT = "."
    STAR = "*"
    EOF = "eof"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Keywords are case-insensitive identifiers the parser matches by text.
KEYWORDS = frozenset(
    {
        "select",
        "from",
        "group",
        "by",
        "as",
        "timestamp",
        "windows",
        "window",
        "tumbling",
        "tumblingwindow",
        "hopping",
        "hoppingwindow",
        "sliding",
        "slidingwindow",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token with source position (1-based)."""

    type: TokenType
    text: str
    line: int
    column: int

    @property
    def lowered(self) -> str:
        return self.text.lower()

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.IDENT and self.lowered in names

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.type.name}({self.text!r})@{self.line}:{self.column}"
