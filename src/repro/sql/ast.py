"""Abstract syntax tree for the ASA-like SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly dotted) column reference, e.g. ``Input.DeviceId`` or
    the ASA pseudo-column ``System.Window().Id``."""

    parts: tuple[str, ...]
    is_call: bool = False  # e.g. System.Window() has call parentheses

    @property
    def name(self) -> str:
        return self.parts[-1]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return ".".join(self.parts) + ("()" if self.is_call else "")


@dataclass(frozen=True)
class AggregateCall:
    """``FUNC(column)`` in the select list."""

    function: str
    argument: ColumnRef

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.function.upper()}({self.argument})"


@dataclass(frozen=True)
class SelectItem:
    """One projection: a column or an aggregate call, optionally aliased."""

    expression: "ColumnRef | AggregateCall"
    alias: str = ""


@dataclass(frozen=True)
class WindowDef:
    """One window in the ``WINDOWS(...)`` clause.

    ``kind`` is ``"tumbling"`` or ``"hopping"``; durations are in the
    named ``unit`` (before normalization to ticks).
    """

    kind: str
    unit: str
    range: int
    slide: int
    name: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = f"'{self.name}', " if self.name else ""
        if self.kind == "tumbling":
            return f"Window({label}Tumbling({self.unit}, {self.range}))"
        return f"Window({label}Hopping({self.unit}, {self.range}, {self.slide}))"


@dataclass(frozen=True)
class Query:
    """A parsed multi-window aggregate query."""

    select_items: tuple[SelectItem, ...]
    source: str
    timestamp_column: str = ""
    group_keys: tuple[ColumnRef, ...] = field(default_factory=tuple)
    window_defs: tuple[WindowDef, ...] = field(default_factory=tuple)

    @property
    def aggregate_calls(self) -> tuple[AggregateCall, ...]:
        return tuple(
            item.expression
            for item in self.select_items
            if isinstance(item.expression, AggregateCall)
        )
