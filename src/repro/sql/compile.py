"""Semantic analysis and compilation: SQL text → optimized plans.

``compile_query`` validates a parsed query against the paper's scope
(one aggregate function over a window set, all durations normalized to
a common tick unit) and produces the window set.  ``plan_query`` is the
end-to-end pipeline the examples use: parse → compile → optimize →
rewrite (through the shared :mod:`repro.core.planner` pipeline),
returning all three plans (original, rewritten, factor).

``compile_registration`` is the *session* target: it stops after
semantic analysis and hands back a workload
:class:`~repro.core.multiquery.Query`, because a live
:class:`~repro.runtime.QuerySession` optimizes registrations
*together* (one shared plan per (aggregate, semantics) group), not one
query at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..aggregates.base import AggregateFunction
from ..aggregates.registry import get_aggregate
from ..core.optimizer import OptimizationResult
from ..core.planner import plan_windows
from ..errors import SqlSemanticError
from ..plans.nodes import LogicalPlan
from ..windows.units import to_ticks
from ..windows.window import Window, WindowSet
from .ast import Query
from .parser import parse


@dataclass
class CompiledQuery:
    """The semantic content of a multi-window aggregate query."""

    query: Query
    window_set: WindowSet
    aggregate: AggregateFunction
    value_column: str
    group_keys: tuple[str, ...]
    source: str
    alias: str = ""


def compile_query(text_or_query: "str | Query") -> CompiledQuery:
    """Validate a query and extract its window set and aggregate.

    Scope (matching the paper's problem statement): exactly one
    aggregate call; a non-empty ``WINDOWS`` clause with distinct
    windows; positive integer durations.
    """
    query = (
        parse(text_or_query) if isinstance(text_or_query, str) else text_or_query
    )
    calls = query.aggregate_calls
    if len(calls) != 1:
        raise SqlSemanticError(
            f"expected exactly one aggregate call, found {len(calls)}"
        )
    call = calls[0]
    aggregate = get_aggregate(call.function)

    if not query.window_defs:
        raise SqlSemanticError("query has no WINDOWS(...) clause")
    names = [d.name for d in query.window_defs if d.name]
    if len(names) != len(set(names)):
        raise SqlSemanticError("window names must be unique")

    window_set = WindowSet()
    for index, definition in enumerate(query.window_defs):
        range_ticks = to_ticks(definition.range, definition.unit)
        slide_ticks = to_ticks(definition.slide, definition.unit)
        name = definition.name or f"w{index + 1}"
        window_set.add(Window(range_ticks, slide_ticks, name=name))

    alias = next(
        (
            item.alias
            for item in query.select_items
            if item.expression is call and item.alias
        ),
        "",
    )
    group_keys = tuple(
        str(key) for key in query.group_keys if not key.is_call
    )
    return CompiledQuery(
        query=query,
        window_set=window_set,
        aggregate=aggregate,
        value_column=call.argument.name,
        group_keys=group_keys,
        source=query.source,
        alias=alias,
    )


@dataclass
class PlannedQuery:
    """Output of the full compile-and-optimize pipeline."""

    compiled: CompiledQuery
    optimization: OptimizationResult
    original: LogicalPlan
    rewritten: "LogicalPlan | None"
    with_factors: "LogicalPlan | None"

    @property
    def best_plan(self) -> LogicalPlan:
        """The plan the optimizer recommends executing."""
        best = self.optimization.best
        if best is None:
            return self.original
        if (
            self.optimization.with_factors is best
            and self.with_factors is not None
        ):
            return self.with_factors
        if self.rewritten is not None and best is self.optimization.without_factors:
            return self.rewritten
        return self.original


def plan_query(
    text: str,
    event_rate: int = 1,
    enable_factor_windows: bool = True,
) -> PlannedQuery:
    """Parse, compile, optimize, and rewrite a query end to end."""
    compiled = compile_query(text)
    planned = plan_windows(
        compiled.window_set,
        compiled.aggregate,
        event_rate=event_rate,
        enable_factor_windows=enable_factor_windows,
        source_name=compiled.source,
    )
    return PlannedQuery(
        compiled=compiled,
        optimization=planned.optimization,
        original=planned.original,
        rewritten=planned.rewritten,
        with_factors=planned.with_factors,
    )


def compile_registration(text_or_query: "str | Query", name: str = ""):
    """Compile SQL into a workload query for session registration.

    This is the deferred-optimization target: no plan is produced here
    — a :class:`~repro.runtime.QuerySession` (or
    :class:`~repro.core.multiquery.IncrementalWorkload`) merges the
    registration into its (aggregate, semantics) group and re-optimizes
    the *group*, so a dashboard opening its fifth query shares plans
    with the first four instead of planning alone.
    """
    from ..core.multiquery import Query as WorkloadQuery

    compiled = compile_query(text_or_query)
    return WorkloadQuery(
        name=name or compiled.alias or f"q_{compiled.aggregate.name}",
        windows=compiled.window_set,
        aggregate=compiled.aggregate,
    )
