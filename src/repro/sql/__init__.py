"""ASA-like SQL front end: tokenizer, parser, compiler, planner."""

from .ast import AggregateCall, ColumnRef, Query, SelectItem, WindowDef
from .compile import CompiledQuery, PlannedQuery, compile_query, plan_query
from .parser import Parser, parse
from .tokenizer import tokenize
from .tokens import Token, TokenType

__all__ = [
    "AggregateCall",
    "ColumnRef",
    "CompiledQuery",
    "Parser",
    "PlannedQuery",
    "Query",
    "SelectItem",
    "Token",
    "TokenType",
    "WindowDef",
    "compile_query",
    "parse",
    "plan_query",
    "tokenize",
]
