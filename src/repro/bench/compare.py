"""Regression diffing of machine-readable ``BENCH_*.json`` reports.

CI stores every benchmark's JSON payload (the perf trajectory); this
module diffs two such payloads metric-by-metric and classifies each
numeric leaf by its key name:

* *higher-is-better* — ``throughput``, ``speedup``, ``gain``, ...;
* *lower-is-better* — ``seconds``, ``physical``, ``pairs``, ...;
* everything else (``events``, ``shards``, fractions-as-parameters) is
  a run parameter used for matching, never gated.

A metric *regresses* when it moves in its bad direction by more than
the threshold (relative).  Wall-clock metrics are machine-dependent:
``portable_only`` gates the exit code on dimensionless ratios and
deterministic work counters only, which is what CI uses when the
baseline file was produced on different hardware.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

#: Key-name fragments marking a lower-is-better metric.
LOWER_IS_BETTER = (
    "seconds",
    "_ms",
    "physical",
    "pairs",
    "dropped",
    "elided",
    "evicted",
    "retained",
    "copied",
)

#: Key-name fragments marking a higher-is-better metric.
HIGHER_IS_BETTER = ("throughput", "speedup", "gain", "boost", "events_per_sec")

#: Key-name fragments of machine-independent metrics (dimensionless
#: ratios and deterministic counters) — safe to gate across hardware.
PORTABLE = (
    "speedup",
    "gain",
    "boost",
    "physical",
    "pairs",
    "fraction",
    "copied",
)


@dataclass
class MetricDelta:
    """One metric compared between a baseline and a current report."""

    path: str
    baseline: float
    current: float
    direction: str  # "higher" | "lower"

    @property
    def portable(self) -> bool:
        leaf = self.path.rsplit(".", 1)[-1].lower()
        return any(tag in leaf for tag in PORTABLE)

    @property
    def change(self) -> float:
        """Relative movement in the *good* direction (+ improved).

        A zero baseline has no finite relative scale: any movement off
        it is reported as ±inf so a counter growing from 0 can never
        slip under a percentage threshold."""
        if self.baseline == 0:
            if self.current == 0:
                return 0.0
            grew_is_good = self.direction == "higher"
            return float("inf") if grew_is_good else float("-inf")
        raw = (self.current - self.baseline) / abs(self.baseline)
        return raw if self.direction == "higher" else -raw

    def regressed(self, threshold: float) -> bool:
        return self.change < -threshold


def _direction(key: str) -> "str | None":
    leaf = key.lower()
    if any(tag in leaf for tag in HIGHER_IS_BETTER):
        return "higher"
    if any(tag in leaf for tag in LOWER_IS_BETTER):
        return "lower"
    return None


def diff_reports(
    baseline, current, path: str = ""
) -> "list[MetricDelta]":
    """Recursively diff two JSON payloads into metric deltas.

    Dicts match by key, lists by index; structure present on only one
    side is skipped (new benchmarks are not regressions)."""
    deltas: list[MetricDelta] = []
    if isinstance(baseline, dict) and isinstance(current, dict):
        for key in baseline:
            if key not in current:
                continue
            child = f"{path}.{key}" if path else key
            deltas.extend(diff_reports(baseline[key], current[key], child))
        return deltas
    if isinstance(baseline, list) and isinstance(current, list):
        for i, (b, c) in enumerate(zip(baseline, current)):
            deltas.extend(diff_reports(b, c, f"{path}[{i}]"))
        return deltas
    if isinstance(baseline, bool) or isinstance(current, bool):
        return deltas
    if isinstance(baseline, (int, float)) and isinstance(
        current, (int, float)
    ):
        key = path.rsplit(".", 1)[-1]
        direction = _direction(key)
        if direction is not None:
            deltas.append(
                MetricDelta(
                    path=path,
                    baseline=float(baseline),
                    current=float(current),
                    direction=direction,
                )
            )
    return deltas


def format_comparison(
    deltas: "list[MetricDelta]",
    threshold: float,
    portable_only: bool = False,
) -> str:
    """Render the comparison; regressions are flagged with ``!``."""
    from .reporting import format_table

    rows = []
    for delta in sorted(deltas, key=lambda d: d.change):
        gated = not portable_only or delta.portable
        flag = "!" if gated and delta.regressed(threshold) else ""
        rows.append(
            (
                flag,
                delta.path,
                f"{delta.baseline:,.4g}",
                f"{delta.current:,.4g}",
                f"{delta.change * 100:+.1f}%",
                delta.direction,
                "yes" if delta.portable else "no",
            )
        )
    return format_table(
        ["", "metric", "baseline", "current", "change", "better", "portable"],
        rows,
        title=f"benchmark comparison (regression threshold "
        f"{threshold * 100:.0f}%"
        + (", gating portable metrics only)" if portable_only else ")"),
    )


def cpu_count_mismatch(baseline: dict, current: dict) -> "str | None":
    """Describe a host-parallelism mismatch between two reports.

    ``write_json_report`` stamps ``meta.cpu_count`` into every payload;
    wall-clock metrics measured on hosts with different core counts are
    not comparable, so the diff surfaces the mismatch.  Returns a
    human-readable description, or ``None`` when the counts match (or
    either report predates the stamp)."""
    base_cpus = baseline.get("meta", {}).get("cpu_count")
    cur_cpus = current.get("meta", {}).get("cpu_count")
    if base_cpus is None or cur_cpus is None or base_cpus == cur_cpus:
        return None
    return (
        f"cpu_count mismatch: baseline recorded {base_cpus} CPU(s), "
        f"current host has {cur_cpus} — wall-clock metrics are not "
        f"comparable (use --portable-only, or regenerate the baseline)"
    )


def compare_files(
    baseline_path: "str | Path",
    current_path: "str | Path",
    threshold: float = 0.2,
    portable_only: bool = False,
    require_cpu_match: bool = False,
) -> "tuple[int, str]":
    """Diff two ``BENCH_*.json`` files.

    Returns ``(exit_code, rendered report)``: exit code 1 when any
    gated metric regressed by more than ``threshold``.  A
    ``meta.cpu_count`` mismatch between the reports is warned about
    (and fails the comparison when ``require_cpu_match`` is set).
    """
    baseline = json.loads(Path(baseline_path).read_text())
    current = json.loads(Path(current_path).read_text())
    mismatch = cpu_count_mismatch(baseline, current)
    deltas = diff_reports(baseline, current)
    gated = [
        d for d in deltas if (not portable_only or d.portable)
    ]
    regressions = [d for d in gated if d.regressed(threshold)]
    text = format_comparison(deltas, threshold, portable_only)
    if mismatch:
        prefix = "FAIL" if require_cpu_match else "WARNING"
        text = f"{prefix}: {mismatch}\n\n" + text
    if regressions:
        text += (
            f"\n{len(regressions)} metric(s) regressed beyond "
            f"{threshold * 100:.0f}%"
        )
    else:
        text += "\nno regressions beyond the threshold"
    failed = bool(regressions) or (require_cpu_match and mismatch)
    return (1 if failed else 0), text
