"""Benchmark harness: run all plans for a window set, measure throughput.

For one (window set, aggregate, stream) triple this produces the
paper's three series — *Original Plan*, *Plan w/o Factor Windows*,
*Plan w/ Factor Windows* — plus optionally the Scotty-style slicing
baseline (Figures 13/22).  Throughput is events per wall-clock second
(the paper's metric [34]); the deterministic processed-pair counts are
reported alongside because they are what the cost model predicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..aggregates.base import AggregateFunction
from ..core.optimizer import OptimizationResult, optimize
from ..windows.coverage import CoverageSemantics
from ..core.rewrite import rewrite_plan
from ..engine.events import EventBatch
from ..engine.executor import ExecutionResult, execute_plan
from ..plans.builder import original_plan
from ..slicing.slicer import execute_sliced
from ..windows.window import WindowSet


@dataclass
class PlanRun:
    """Measured execution of one plan variant."""

    name: str
    throughput: float
    pairs: int
    wall_seconds: float
    cost: int = 0
    physical: int = 0

    def boost_over(self, other: "PlanRun") -> float:
        """Throughput ratio ``self / other`` (the paper's 'boost')."""
        if other.throughput == 0:
            return float("inf")
        return self.throughput / other.throughput


@dataclass
class ComparisonResult:
    """All plan variants measured on one window set and stream."""

    windows: WindowSet
    aggregate: AggregateFunction
    optimization: OptimizationResult
    original: PlanRun
    rewritten: "PlanRun | None" = None
    with_factors: "PlanRun | None" = None
    scotty: "PlanRun | None" = None

    @property
    def boost_without_factors(self) -> float:
        if self.rewritten is None:
            return 1.0
        return self.rewritten.boost_over(self.original)

    @property
    def boost_with_factors(self) -> float:
        if self.with_factors is None:
            return self.boost_without_factors
        return self.with_factors.boost_over(self.original)

    @property
    def work_reduction_without_factors(self) -> float:
        """Deterministic pair-count ratio original / rewritten."""
        if self.rewritten is None or self.rewritten.pairs == 0:
            return 1.0
        return self.original.pairs / self.rewritten.pairs

    @property
    def work_reduction_with_factors(self) -> float:
        if self.with_factors is None or self.with_factors.pairs == 0:
            return self.work_reduction_without_factors
        return self.original.pairs / self.with_factors.pairs

    def runs(self) -> list[PlanRun]:
        out = [self.original]
        for run in (self.rewritten, self.with_factors, self.scotty):
            if run is not None:
                out.append(run)
        return out


def _measure(name: str, result: ExecutionResult, cost: int = 0) -> PlanRun:
    return PlanRun(
        name=name,
        throughput=result.throughput,
        pairs=result.stats.total_pairs,
        wall_seconds=result.stats.wall_seconds,
        cost=cost,
        physical=result.stats.total_physical,
    )


def compare_plans(
    windows: WindowSet,
    aggregate: AggregateFunction,
    batch: EventBatch,
    event_rate: int = 1,
    include_scotty: bool = False,
    engine: str = "columnar",
    semantics: "CoverageSemantics | None" = None,
) -> ComparisonResult:
    """Optimize ``windows`` and measure every plan variant on ``batch``."""
    optimization = optimize(
        windows, aggregate, event_rate=event_rate, semantics_override=semantics
    )

    orig_plan = original_plan(windows, aggregate)
    orig_run = _measure(
        "original",
        execute_plan(orig_plan, batch, engine=engine),
        cost=optimization.baseline_cost,
    )

    rewritten_run = None
    factors_run = None
    if optimization.without_factors is not None:
        plan = rewrite_plan(optimization.without_factors, aggregate)
        rewritten_run = _measure(
            "rewritten",
            execute_plan(plan, batch, engine=engine),
            cost=optimization.without_factors.total_cost,
        )
    if optimization.with_factors is not None:
        plan = rewrite_plan(
            optimization.with_factors, aggregate, description="rewritten+factors"
        )
        factors_run = _measure(
            "rewritten+factors",
            execute_plan(plan, batch, engine=engine),
            cost=optimization.with_factors.total_cost,
        )

    scotty_run = None
    if include_scotty and aggregate.mergeable:
        sliced = execute_sliced(windows, aggregate, batch)
        scotty_run = PlanRun(
            name="scotty",
            throughput=sliced.throughput,
            pairs=sliced.stats.total_pairs,
            wall_seconds=sliced.stats.wall_seconds,
        )

    return ComparisonResult(
        windows=windows,
        aggregate=aggregate,
        optimization=optimization,
        original=orig_run,
        rewritten=rewritten_run,
        with_factors=factors_run,
        scotty=scotty_run,
    )


@dataclass
class BoostSummary:
    """Mean/max throughput boosts over a batch of runs (Tables I-IV)."""

    setup: str
    mean_without: float = 0.0
    max_without: float = 0.0
    mean_with: float = 0.0
    max_with: float = 0.0
    runs: int = 0

    @classmethod
    def from_comparisons(
        cls, setup: str, comparisons: "list[ComparisonResult]"
    ) -> "BoostSummary":
        without = [c.boost_without_factors for c in comparisons]
        with_f = [c.boost_with_factors for c in comparisons]
        n = len(comparisons)
        return cls(
            setup=setup,
            mean_without=sum(without) / n if n else 0.0,
            max_without=max(without) if n else 0.0,
            mean_with=sum(with_f) / n if n else 0.0,
            max_with=max(with_f) if n else 0.0,
            runs=n,
        )

    def row(self) -> tuple:
        return (
            self.setup,
            f"{self.mean_without:.2f}x",
            f"{self.max_without:.2f}x",
            f"{self.mean_with:.2f}x",
            f"{self.max_with:.2f}x",
        )


@dataclass
class SeriesPoint:
    """One x-position of a figure: throughputs of each plan variant."""

    run_index: int
    values: dict[str, float] = field(default_factory=dict)
