"""Command-line interface: ``factor-windows <command>``.

Commands
--------
``optimize``      optimize an ASA-like SQL query and print the plans.
``experiment``    regenerate one of the paper's tables/figures.
``list``          list available experiment ids.
``engines``       list registered execution paths; with ``--query``,
                  show the physical path each window takes per engine.
``session``       run a live :class:`~repro.runtime.QuerySession` over
                  a synthetic stream, registering the given queries
                  one at a time mid-stream (DESIGN.md §6).  With
                  ``--shards N`` (N > 1) the stream runs on the
                  key-sharded :class:`~repro.runtime.ShardedSession`
                  instead (DESIGN.md §7); ``--shard-backend`` picks
                  the serial oracle, the multiprocessing pipe pool, or
                  the shared-memory ring pool (``shm``, DESIGN.md §8);
                  ``--async-ingest`` puts the bounded-queue front door
                  in front of either session; ``--checkpoint-dir`` +
                  ``--checkpoint-every`` write rotating watermark-safe
                  checkpoints while streaming (DESIGN.md §9).
``restore``       resume a ``session`` run from its newest checkpoint
                  (or an explicit checkpoint file) and stream the rest
                  of the events — bit-identical to never having
                  stopped (invariant 12, docs/durability.md).
``serve``         run the supervised multi-tenant session service: a
                  JSON-lines TCP front door over many named tenant
                  sessions with per-tenant rate quotas, queue budgets,
                  circuit breakers, and checkpoint+replay restore
                  (DESIGN.md §10, docs/service.md).  ``--config``
                  loads a ``tenants.yaml`` quota file.
``bench``         benchmark utilities; ``bench compare`` diffs two
                  ``BENCH_*.json`` reports and exits non-zero on
                  regressions beyond a threshold (the CI perf gate).
"""

from __future__ import annotations

import argparse
import sys

from ..plans.render import to_tree, to_trill
from ..sql.compile import plan_query
from . import experiments
from .reporting import format_boost_summary_table

EXPERIMENTS = {
    "fig11": "throughput panels, synthetic, |W|=5",
    "fig12": "optimizer overhead vs |W|",
    "fig13": "Flink vs Scotty vs factor windows, |W|=10",
    "fig14": "throughput panels, synthetic, |W|=10",
    "fig17": "throughput panels, real (DEBS-like), |W|=5",
    "fig18": "throughput panels, real (DEBS-like), |W|=10",
    "fig19": "cost-model correlation",
    "fig20": "throughput panels, synthetic, |W|=15",
    "fig21": "throughput panels, synthetic, |W|=20",
    "fig22": "Flink vs Scotty vs factor windows, |W|=5",
    "table1": "boost summary, synthetic",
    "table2": "boost summary, real (DEBS-like)",
    "table3": "boost summary, scalability |W| in {15,20}",
    "table4": "boost summary, synthetic small stream",
}


def _cmd_optimize(args: argparse.Namespace) -> int:
    planned = plan_query(args.query, enable_factor_windows=not args.no_factors)
    print(planned.optimization.summary())
    print()
    print(to_tree(planned.best_plan, shards=args.shards))
    if args.trill:
        print()
        print("Trill expression:")
        print(to_trill(planned.best_plan))
    return 0


def _panel_experiment(args, dataset: str, size: int) -> int:
    panels = experiments.throughput_panels(
        dataset=dataset, set_size=size, events=args.events, runs=args.runs
    )
    for panel in panels:
        print(panel.render())
        print()
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    name = args.name
    if name == "fig11":
        return _panel_experiment(args, "synthetic", 5)
    if name == "fig14":
        return _panel_experiment(args, "synthetic", 10)
    if name == "fig17":
        return _panel_experiment(args, "real", 5)
    if name == "fig18":
        return _panel_experiment(args, "real", 10)
    if name == "fig20":
        return _panel_experiment(args, "synthetic", 15)
    if name == "fig21":
        return _panel_experiment(args, "synthetic", 20)
    if name == "fig12":
        points = experiments.optimizer_overhead(runs=args.runs)
        print(experiments.render_overhead(points))
        return 0
    if name in ("fig13", "fig22"):
        size = 10 if name == "fig13" else 5
        panels = experiments.scotty_comparison(
            set_size=size, events=args.events, runs=args.runs
        )
        for panel in panels:
            print(panel.render(include_scotty=True))
            print()
        return 0
    if name == "fig19":
        panels = experiments.cost_model_correlation(
            events=args.events, runs=args.runs
        )
        print(experiments.render_correlation(panels))
        return 0
    if name in ("table1", "table2", "table3", "table4"):
        dataset = "real" if name == "table2" else "synthetic"
        sizes = (15, 20) if name == "table3" else (5, 10)
        events = args.events // 4 if name == "table4" else args.events
        summaries = experiments.boost_summary_table(
            dataset=dataset, set_sizes=sizes, events=events, runs=args.runs
        )
        print(
            format_boost_summary_table(
                summaries, title=f"{name}: throughput boosts ({dataset})"
            )
        )
        return 0
    print(f"unknown experiment {name!r}; try: factor-windows list", file=sys.stderr)
    return 2


def _cmd_engines(args: argparse.Namespace) -> int:
    from ..engine.executor import available_engines
    from ..plans.render import to_tree

    if not args.query:
        for name in available_engines():
            print(name)
        return 0
    planned = plan_query(args.query)
    for name in available_engines():
        print(to_tree(planned.best_plan, engine=name))
        print()
    return 0


def _cmd_session(args: argparse.Namespace) -> int:
    if args.replay is not None or (args.query and args.query[0] == "run"):
        return _cmd_scenario_run(args)
    if args.record is not None:
        print(
            "--record only applies to scenario mode "
            "(session run <scenario>.yaml --record <capture>.rstream)",
            file=sys.stderr,
        )
        return 2
    from ..runtime import QuerySession, ShardedSession
    from ..workloads.streams import constant_rate_stream

    # Tri-state so scenario mode can tell "not given" from a real
    # override; the classic path keeps its old defaults.
    if args.shards is None:
        args.shards = 1
    if args.shard_backend is None:
        args.shard_backend = "serial"

    stream = constant_rate_stream(
        args.events, num_keys=args.keys, rate=args.rate, seed=args.seed
    )
    rows = list(stream.rows())
    # First query opens before any data; the rest spread over the
    # first half of the stream — the live-dashboard shape.
    points = {
        (i * len(rows)) // (2 * max(1, len(args.query))): q
        for i, q in enumerate(args.query)
    }
    # Auto-checkpointing runs *inside* the session (the same code path
    # the multi-tenant service supervises; DESIGN.md §9–§10).  The
    # meta provider fires on the applying thread at the cut, so the
    # recorded position is the exact applied-event count — correct
    # even in async-ingest mode, where this loop runs ahead of the
    # pump.  A watermark cannot split a tick, so the position (plus
    # the not-yet-registered queries) is what `restore` needs.
    session = None
    auto_kwargs: dict = {}
    if args.checkpoint_dir is not None:
        from ..runtime import CheckpointStore

        store = CheckpointStore(
            args.checkpoint_dir, every=args.checkpoint_every
        )

        def checkpoint_meta() -> dict:
            reorder = session.reorder_stats
            position = reorder.accepted + reorder.late_dropped
            return {
                "position": position,
                "stream": {
                    "events": args.events,
                    "keys": args.keys,
                    "rate": args.rate,
                    "seed": args.seed,
                },
                "pending": {
                    j: q for j, q in points.items() if j >= position
                },
            }

        def on_checkpoint(snap, path) -> None:
            print(f"[wm {snap.watermark:>6}] checkpoint -> {path.name}")

        auto_kwargs = {
            "auto_checkpoint": store,
            "checkpoint_meta": checkpoint_meta,
            "on_checkpoint": on_checkpoint,
        }
        print(
            f"checkpointing every {args.checkpoint_every:,} watermark "
            f"ticks to {args.checkpoint_dir}/"
        )
    if args.shards > 1:
        if args.slots is not None:
            auto_kwargs["num_slots"] = args.slots
        session = ShardedSession(
            num_keys=args.keys,
            num_shards=args.shards,
            backend=args.shard_backend,
            max_lateness=args.lateness,
            hysteresis=None if args.no_adapt else args.hysteresis,
            async_ingest=args.async_ingest,
            **auto_kwargs,
        )
        print(
            f"sharded session: x{args.shards} key-hash shards over "
            f"{session.num_slots} slots ({args.shard_backend} backend"
            f"{', async ingest' if args.async_ingest else ''})"
        )
    else:
        session = QuerySession(
            num_keys=args.keys,
            max_lateness=args.lateness,
            hysteresis=None if args.no_adapt else args.hysteresis,
            async_ingest=args.async_ingest,
            **auto_kwargs,
        )
        if args.async_ingest:
            print("async ingest: bounded-queue front door enabled")
    rebalance_every = args.rebalance_every if args.shards > 1 else 0
    try:
        for i, (ts, key, value) in enumerate(rows):
            if i in points:
                name = session.register(points[i])
                print(f"[wm {session.watermark:>6}] registered {name!r}")
            session.push(ts, key, value)
            if rebalance_every and i and i % rebalance_every == 0:
                moved = session.rebalance()
                if moved:
                    print(
                        f"[wm {session.watermark:>6}] rebalanced: "
                        f"{moved} slot(s) migrated"
                    )
        results = session.finish(horizon=stream.horizon)
    except BaseException:
        session.close()  # stop pump threads / workers, unlink rings
        raise

    _print_session_report(session, results, args.async_ingest)
    if args.shards > 1:
        _print_slot_map(session)
    session.close()
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    """``session run <scenario>.yaml`` — the declarative front end
    (docs/scenarios.md): compile, execute, verify, optionally record;
    ``session run --replay <capture>.rstream`` re-feeds a capture."""
    from ..errors import ExecutionError
    from ..scenarios import ScenarioRunner, replay_capture

    overrides = {
        "backend": args.shard_backend,
        "shards": args.shards,
        "async_ingest": True if args.async_ingest else None,
    }
    try:
        if args.replay is not None:
            if [q for q in args.query if q != "run"]:
                print(
                    "--replay takes no scenario file — the capture "
                    "carries the recorded stream",
                    file=sys.stderr,
                )
                return 2
            report = replay_capture(
                args.replay, verify=not args.no_verify, **overrides
            )
            _print_scenario_report(report, source=str(args.replay))
            if not args.no_verify:
                print("replay matched the recorded outcome")
            return 0
        if len(args.query) != 2:
            print(
                "usage: factor-windows session run <scenario>.yaml "
                "[--record <capture>.rstream]",
                file=sys.stderr,
            )
            return 2
        runner = ScenarioRunner(args.query[1])
        report = runner.run(record=args.record, verify=False, **overrides)
        _print_scenario_report(report, source=args.query[1])
        if args.record is not None:
            print(f"recorded -> {args.record}")
        expect = runner.scenario.expect
        has_checks = any(
            value is not None
            for value in (
                expect.digest,
                expect.accepted,
                expect.late_dropped,
                expect.total_pairs,
                expect.min_throughput,
                expect.queries,
            )
        )
        if has_checks and not args.no_verify:
            report.verify(expect)
            print("expectations verified")
    except ExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _print_scenario_report(report, source: str) -> None:
    shape = f"{report.backend} x{report.shards}"
    if report.async_ingest:
        shape += ", async ingest"
    print(f"scenario {report.name!r} ({source}) on {shape}")
    print(
        f"  events={report.events:,} accepted={report.accepted:,} "
        f"late={report.late_dropped:,} pairs={report.total_pairs:,} "
        f"physical={report.total_physical:,}"
    )
    extras = []
    if report.slots_moved:
        extras.append(f"{report.slots_moved} slot(s) migrated")
    if report.worker_recoveries:
        extras.append(f"{report.worker_recoveries} worker recovery(ies)")
    if report.faults_fired:
        extras.append(f"{report.faults_fired} fault(s) fired")
    if extras:
        print("  " + ", ".join(extras))
    for name, instances in sorted(report.queries.items()):
        print(f"  query {name:16s} {instances:>6,} emitted instance(s)")
    print(
        f"  throughput {report.throughput / 1e3:,.0f}K ev/s "
        f"({report.wall_seconds:.2f}s)"
    )
    print(f"  digest {report.digest}")


def _print_slot_map(session) -> None:
    """The final slot->shard layout, run-length compressed, plus the
    decayed per-shard load the layout ended at (DESIGN.md §12)."""
    slot_map = session.slot_map
    if slot_map is None:
        return
    runs = []
    start = 0
    for i in range(1, len(slot_map) + 1):
        if i == len(slot_map) or slot_map[i] != slot_map[start]:
            count = i - start
            label = f"{slot_map[start]}"
            runs.append(label if count == 1 else f"{label}x{count}")
            start = i
    print()
    print(f"final slot map ({len(slot_map)} slots -> shard):")
    print("  " + " ".join(runs))
    for shard, load in sorted(session.shard_loads().items()):
        print(
            f"  shard {shard}: {int(load['slots'])} slots, "
            f"{int(load['keys'])} keys, load {load['events']:.1f} ev "
            f"/ {load['bytes']:.0f} B (decayed)"
        )


def _print_session_report(session, results, async_ingest: bool) -> None:
    print()
    print("plan switches:")
    for switch in session.switches:
        print(f"  {switch}")
    print()
    print("emitted results:")
    for name, by_window in sorted(results.items()):
        for window, emitted in sorted(
            by_window.items(), key=lambda kv: (kv[0].range, kv[0].slide)
        ):
            print(
                f"  {name:10s} {window}: instances "
                f"[{emitted.start_instance}, {emitted.frontier})"
            )
    stats = session.stats()
    print()
    print(
        f"events={session.reorder_stats.accepted:,} "
        f"late={session.reorder_stats.late_dropped:,} "
        f"pairs={stats.total_pairs:,} "
        f"physical={stats.total_physical:,} "
        f"throughput={stats.throughput / 1e3:,.0f}K ev/s"
    )
    if async_ingest:
        ingest = session.ingest_stats
        print(
            f"ingest queue: {ingest.enqueued_events:,} events, "
            f"{ingest.backpressure_waits:,} backpressure waits, "
            f"peak backlog {ingest.max_depth_events:,}"
        )


def _cmd_restore(args: argparse.Namespace) -> int:
    from pathlib import Path

    from ..runtime import (
        QuerySession,
        ShardedSession,
        latest_checkpoint,
        read_checkpoint,
    )
    from ..workloads.streams import constant_rate_stream

    target = Path(args.checkpoint)
    path = latest_checkpoint(target) if target.is_dir() else target
    if path is None or not path.exists():
        print(f"no checkpoint found at {target}", file=sys.stderr)
        return 2
    snap = read_checkpoint(path)
    meta = snap.meta
    if "stream" not in meta or "position" not in meta:
        print(
            f"{path} carries no stream metadata (it was not written by "
            "'factor-windows session'); restore it via the Python API "
            "instead (docs/durability.md)",
            file=sys.stderr,
        )
        return 2
    if snap.kind == "sharded":
        session = ShardedSession.restore(
            snap,
            backend=args.shard_backend,
            async_ingest=args.async_ingest,
        )
    else:
        session = QuerySession.restore(snap, async_ingest=args.async_ingest)
    spec = meta["stream"]
    events = args.events if args.events is not None else spec["events"]
    stream = constant_rate_stream(
        events, num_keys=spec["keys"], rate=spec["rate"], seed=spec["seed"]
    )
    rows = list(stream.rows())
    # Resume from what the restored session has actually applied — its
    # own (restored) reorder counters — not the checkpoint's recorded
    # position.  The two differ when the cut was taken mid-stream in
    # async mode: the snapshot then carries ingest-queue *residue*,
    # which restore has just replayed on top of the recorded position.
    # `switches` is a pump synchronization point, so the counters are
    # settled before we read them.
    _ = session.switches
    reorder = session.reorder_stats
    position = min(reorder.accepted + reorder.late_dropped, len(rows))
    pending = {
        int(i): q for i, q in meta.get("pending", {}).items() if i < len(rows)
    }
    print(
        f"restored {snap.kind!r} session from {path} "
        f"(watermark {snap.watermark:,}, stream position {position:,}, "
        f"{len(rows) - position:,} events to go)"
    )
    try:
        for i in range(position, len(rows)):
            if i in pending:
                name = session.register(pending[i])
                print(f"[wm {session.watermark:>6}] registered {name!r}")
            ts, key, value = rows[i]
            session.push(ts, key, value)
        results = session.finish(horizon=stream.horizon)
    except BaseException:
        session.close()
        raise

    _print_session_report(session, results, args.async_ingest)
    session.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..service import (
        DEFAULT_CHECKPOINT_EVERY,
        ServiceServer,
        SessionManager,
        load_tenants_config,
    )

    config = (
        load_tenants_config(args.config) if args.config is not None else None
    )
    every = (
        args.checkpoint_every
        if args.checkpoint_every is not None
        else DEFAULT_CHECKPOINT_EVERY
    )
    manager = SessionManager(
        config, directory=args.checkpoint_dir, checkpoint_every=every
    )
    server = ServiceServer(
        manager, host=args.host, port=args.port, max_workers=args.workers
    )

    def on_started(srv: ServiceServer) -> None:
        # Flushed so wrappers reading the pipe see the bound port
        # immediately (with --port 0 it is only known here).
        print(
            f"factor-windows service listening on {srv.host}:{srv.port}",
            flush=True,
        )
        if args.config is not None:
            print(f"tenant quotas: {args.config}", flush=True)
        print('stop with Ctrl-C or {"op": "shutdown"}', flush=True)

    try:
        server.run(on_started=on_started)
    except KeyboardInterrupt:
        print("\nstopping")
    finally:
        manager.close()
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from .compare import compare_files

    code, text = compare_files(
        args.baseline,
        args.current,
        threshold=args.threshold,
        portable_only=args.portable_only,
        require_cpu_match=args.require_cpu_match,
    )
    print(text)
    return code


def _cmd_list(_args: argparse.Namespace) -> int:
    for name, description in sorted(EXPERIMENTS.items()):
        print(f"{name:8s} {description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="factor-windows",
        description="Factor Windows: cost-based multi-window aggregate "
        "optimization (ICDE 2022 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_opt = sub.add_parser("optimize", help="optimize an ASA-like SQL query")
    p_opt.add_argument("query", help="the query text")
    p_opt.add_argument("--no-factors", action="store_true")
    p_opt.add_argument("--trill", action="store_true", help="print Trill form")
    p_opt.add_argument(
        "--shards",
        type=int,
        default=None,
        help="annotate the plan with its key-shard fan-out (DESIGN.md §7)",
    )
    p_opt.set_defaults(func=_cmd_optimize)

    p_exp = sub.add_parser("experiment", help="regenerate a table/figure")
    p_exp.add_argument("name", help="experiment id (see: factor-windows list)")
    p_exp.add_argument("--events", type=int, default=experiments.DEFAULT_EVENTS)
    p_exp.add_argument("--runs", type=int, default=experiments.DEFAULT_RUNS)
    p_exp.set_defaults(func=_cmd_experiment)

    p_list = sub.add_parser("list", help="list experiment ids")
    p_list.set_defaults(func=_cmd_list)

    p_eng = sub.add_parser("engines", help="list execution paths")
    p_eng.add_argument(
        "--query", default="", help="annotate this query's best plan"
    )
    p_eng.set_defaults(func=_cmd_engines)

    p_ses = sub.add_parser(
        "session", help="run a live session, registering queries mid-stream"
    )
    p_ses.add_argument(
        "query",
        nargs="+",
        help="queries to register one at a time — or 'run <scenario>."
        "yaml' to execute a declarative scenario (docs/scenarios.md)",
    )
    p_ses.add_argument("--events", type=int, default=100_000)
    p_ses.add_argument("--keys", type=int, default=4)
    p_ses.add_argument("--rate", type=int, default=2)
    p_ses.add_argument("--lateness", type=int, default=8)
    p_ses.add_argument("--seed", type=int, default=1)
    p_ses.add_argument("--hysteresis", type=float, default=0.25)
    p_ses.add_argument(
        "--no-adapt",
        action="store_true",
        help="disable rate-driven re-planning",
    )
    p_ses.add_argument(
        "--shards",
        type=int,
        default=None,
        help="run on a key-sharded session with this many hash shards "
        "(1 = single-core QuerySession; DESIGN.md §7; in scenario "
        "mode, overrides the scenario's runtime.shards)",
    )
    p_ses.add_argument(
        "--shard-backend",
        choices=("serial", "process", "shm"),
        default=None,
        help="where shard cores run: in-process (deterministic oracle), "
        "one worker process per shard over pipes, or one worker per "
        "shard over shared-memory rings (DESIGN.md §8)",
    )
    p_ses.add_argument(
        "--slots",
        type=int,
        default=None,
        help="virtual slot count for the elastic slot->shard partition "
        "(sharded sessions only; default 256 — DESIGN.md §12)",
    )
    p_ses.add_argument(
        "--rebalance-every",
        type=int,
        default=0,
        help="greedily migrate hot slots off the most-loaded shard "
        "every N events (0 = never; sharded sessions only — "
        "DESIGN.md §12)",
    )
    p_ses.add_argument(
        "--async-ingest",
        action="store_true",
        help="put the bounded-queue non-blocking front door in front "
        "of the session (backpressure instead of blocking pushes)",
    )
    p_ses.add_argument(
        "--checkpoint-dir",
        default=None,
        help="write rotating watermark-safe checkpoints to this "
        "directory while streaming (DESIGN.md §9)",
    )
    p_ses.add_argument(
        "--checkpoint-every",
        type=int,
        default=5_000,
        help="checkpoint cadence in watermark ticks (default 5000; "
        "needs --checkpoint-dir)",
    )
    p_ses.add_argument(
        "--record",
        default=None,
        metavar="CAPTURE",
        help="scenario mode: record the exact arrival stream, op "
        "schedule, and outcome to a .rstream capture for bit-identical "
        "replay (docs/scenarios.md)",
    )
    p_ses.add_argument(
        "--replay",
        default=None,
        metavar="CAPTURE",
        help="re-feed a recorded .rstream capture bit-identically and "
        "check the outcome against what was recorded "
        "(session run --replay <capture>.rstream)",
    )
    p_ses.add_argument(
        "--no-verify",
        action="store_true",
        help="scenario mode: skip checking the run against the "
        "scenario's expect section / the capture's recorded outcome",
    )
    p_ses.set_defaults(func=_cmd_session)

    p_res = sub.add_parser(
        "restore",
        help="resume a checkpointed 'session' run from its newest "
        "checkpoint (invariant 12)",
    )
    p_res.add_argument(
        "checkpoint",
        help="a checkpoint directory (newest file wins) or one "
        "*.rckpt file",
    )
    p_res.add_argument(
        "--events",
        type=int,
        default=None,
        help="total stream length to run to (default: the original "
        "run's --events)",
    )
    p_res.add_argument(
        "--shard-backend",
        choices=("serial", "process", "shm"),
        default="serial",
        help="backend for a restored sharded session — an override, "
        "not part of the snapshot (invariant 12)",
    )
    p_res.add_argument(
        "--async-ingest",
        action="store_true",
        help="restore behind the async front door (also an override)",
    )
    p_res.set_defaults(func=_cmd_restore)

    p_srv = sub.add_parser(
        "serve",
        help="run the supervised multi-tenant session service "
        "(JSON-lines TCP; DESIGN.md §10, docs/service.md)",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port",
        type=int,
        default=7071,
        help="TCP port (0 binds an ephemeral port, printed at startup)",
    )
    p_srv.add_argument(
        "--config",
        default=None,
        help="tenants.yaml-shaped quota/session config "
        "(docs/service.md); omitted = defaults for every tenant",
    )
    p_srv.add_argument(
        "--checkpoint-dir",
        default=None,
        help="root for per-tenant checkpoint stores "
        "(default: a private temp dir cleaned up on exit)",
    )
    p_srv.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="auto-checkpoint cadence in watermark ticks "
        "(default: the service default, 512; also bounds each "
        "tenant's replay tail)",
    )
    p_srv.add_argument(
        "--workers",
        type=int,
        default=8,
        help="request-handler thread pool size (bounds concurrent "
        "tenant requests)",
    )
    p_srv.set_defaults(func=_cmd_serve)

    p_bench = sub.add_parser("bench", help="benchmark utilities")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_cmp = bench_sub.add_parser(
        "compare",
        help="diff two BENCH_*.json reports; exit non-zero on regression",
    )
    p_cmp.add_argument("baseline", help="baseline BENCH_*.json path")
    p_cmp.add_argument("current", help="current BENCH_*.json path")
    p_cmp.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="relative regression tolerance (default 0.2 = 20%%)",
    )
    p_cmp.add_argument(
        "--portable-only",
        action="store_true",
        help="gate only machine-independent metrics (speedups, logical/"
        "physical counters) — use when comparing across hardware",
    )
    p_cmp.add_argument(
        "--require-cpu-match",
        action="store_true",
        help="fail (exit 1) when the baseline's recorded meta.cpu_count "
        "differs from the current report's — wall-clock gating is only "
        "meaningful on matching hardware",
    )
    p_cmp.set_defaults(func=_cmd_bench_compare)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
