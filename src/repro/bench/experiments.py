"""Experiment definitions — one per table/figure of the paper.

Every experiment returns structured results *and* can render the same
rows/series the paper reports.  Default stream sizes are scaled down
(the paper uses 1M/10M/32M events on a C# engine; a Python engine gets
the same shapes from fewer events), and every entry point takes
``events=`` to scale back up.

Mapping (see DESIGN.md §4):

* Figures 11/14/15/16/20/21 → :func:`throughput_panels`
* Figures 17/18             → :func:`throughput_panels` (``dataset="real"``)
* Tables I/II/IV            → :func:`boost_summary_table`
* Table III                 → :func:`boost_summary_table` (sizes 15/20)
* Figure 12                 → :func:`optimizer_overhead`
* Figures 13/22             → :func:`scotty_comparison`
* Figure 19                 → :func:`cost_model_correlation`
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..aggregates.base import AggregateFunction
from ..aggregates.registry import MIN
from ..core.optimizer import optimize
from ..engine.events import EventBatch
from ..windows.coverage import CoverageSemantics
from ..windows.window import WindowSet
from ..workloads.debs import debs_like_stream
from ..workloads.generators import RandomGen, SequentialGen
from ..workloads.streams import constant_rate_stream
from .analysis import SampleStats, pearson_r
from .harness import BoostSummary, ComparisonResult, compare_plans
from .reporting import format_boost_summary_table, format_series, format_table

#: Default scaled-down stream size for experiments (paper: 1M-32M).
DEFAULT_EVENTS = 200_000
DEFAULT_RUNS = 10
_BASE_SEED = 100


def make_stream(dataset: str, events: int, seed: int = 1) -> EventBatch:
    """Build the experiment stream: ``synthetic`` or ``real`` (DEBS-like)."""
    if dataset == "real":
        return debs_like_stream(events, seed=seed)
    return constant_rate_stream(events, seed=seed)


def _generator(name: str):
    return SequentialGen() if name.startswith("s") else RandomGen()


def _semantics(tumbling: bool) -> CoverageSemantics:
    # The paper's panels: tumbling window sets exercise partitioned-by,
    # hopping sets exercise the general covered-by relation (§V-B).
    if tumbling:
        return CoverageSemantics.PARTITIONED_BY
    return CoverageSemantics.COVERED_BY


@dataclass
class PanelResult:
    """One figure panel: per-run plan comparisons."""

    generator: str
    tumbling: bool
    set_size: int
    comparisons: list[ComparisonResult] = field(default_factory=list)

    @property
    def label(self) -> str:
        semantics = "partitioned by" if self.tumbling else "covered by"
        gen = "RandomGen" if self.generator.startswith("r") else "SequentialGen"
        return f"{gen}, '{semantics}'"

    @property
    def setup_code(self) -> str:
        prefix = "R" if self.generator.startswith("r") else "S"
        kind = "tumbling" if self.tumbling else "hopping"
        return f"{prefix}-{self.set_size}-{kind}"

    def series(self, include_scotty: bool = False) -> dict[str, list[float]]:
        out: dict[str, list[float]] = {}
        if include_scotty:
            out["Flink"] = [c.original.throughput for c in self.comparisons]
            out["Scotty"] = [
                c.scotty.throughput if c.scotty else float("nan")
                for c in self.comparisons
            ]
            out["Factor Windows"] = [
                (c.with_factors or c.original).throughput
                for c in self.comparisons
            ]
            return out
        out["Original Plan"] = [c.original.throughput for c in self.comparisons]
        out["Plan w/o Factor Windows"] = [
            (c.rewritten or c.original).throughput for c in self.comparisons
        ]
        out["Plan w/ Factor Windows"] = [
            (c.with_factors or c.original).throughput
            for c in self.comparisons
        ]
        return out

    def render(self, include_scotty: bool = False) -> str:
        return format_series(
            self.series(include_scotty),
            title=self.label,
            x_label="run",
        )


def run_panel(
    generator: str,
    tumbling: bool,
    set_size: int,
    batch: EventBatch,
    runs: int = DEFAULT_RUNS,
    aggregate: AggregateFunction = MIN,
    include_scotty: bool = False,
) -> PanelResult:
    """Run one figure panel: ``runs`` freshly generated window sets."""
    gen = _generator(generator)
    panel = PanelResult(generator=generator, tumbling=tumbling, set_size=set_size)
    semantics = _semantics(tumbling)
    for i in range(runs):
        windows = gen.generate(set_size, tumbling=tumbling, seed=_BASE_SEED + i)
        panel.comparisons.append(
            compare_plans(
                windows,
                aggregate,
                batch,
                include_scotty=include_scotty,
                semantics=semantics,
            )
        )
    return panel


def throughput_panels(
    dataset: str = "synthetic",
    set_size: int = 5,
    events: int = DEFAULT_EVENTS,
    runs: int = DEFAULT_RUNS,
    aggregate: AggregateFunction = MIN,
    include_scotty: bool = False,
) -> list[PanelResult]:
    """Figures 11/14-18/20/21: the four panels (R/S × tumbling/hopping)."""
    batch = make_stream(dataset, events)
    panels = []
    for generator in ("random", "sequential"):
        for tumbling in (True, False):
            panels.append(
                run_panel(
                    generator,
                    tumbling,
                    set_size,
                    batch,
                    runs=runs,
                    aggregate=aggregate,
                    include_scotty=include_scotty,
                )
            )
    return panels


def boost_summary_table(
    dataset: str = "synthetic",
    set_sizes: tuple[int, ...] = (5, 10),
    events: int = DEFAULT_EVENTS,
    runs: int = DEFAULT_RUNS,
    aggregate: AggregateFunction = MIN,
) -> list[BoostSummary]:
    """Tables I/II/III/IV: mean/max boosts for every setup."""
    batch = make_stream(dataset, events)
    summaries = []
    for generator in ("random", "sequential"):
        for set_size in set_sizes:
            for tumbling in (True, False):
                panel = run_panel(
                    generator,
                    tumbling,
                    set_size,
                    batch,
                    runs=runs,
                    aggregate=aggregate,
                )
                summaries.append(
                    BoostSummary.from_comparisons(
                        panel.setup_code, panel.comparisons
                    )
                )
    return summaries


@dataclass
class OverheadPoint:
    """Figure 12: optimizer overhead for one window-set setting."""

    setup: str
    semantics: CoverageSemantics
    stats: SampleStats


def optimizer_overhead(
    set_sizes: tuple[int, ...] = (5, 10, 15, 20),
    runs: int = DEFAULT_RUNS,
    aggregate: AggregateFunction = MIN,
) -> list[OverheadPoint]:
    """Figure 12: average factor-window optimization time vs |W|.

    Tumbling sets exercise partitioned-by search (Algorithm 5), hopping
    sets the covered-by search (Algorithm 2); no stream is executed.
    """
    points: list[OverheadPoint] = []
    for generator in ("random", "sequential"):
        gen = _generator(generator)
        prefix = "R" if generator.startswith("r") else "S"
        for set_size in set_sizes:
            for tumbling in (True, False):
                semantics = _semantics(tumbling)
                timings = []
                for i in range(runs):
                    windows = gen.generate(
                        set_size, tumbling=tumbling, seed=_BASE_SEED + i
                    )
                    started = time.perf_counter()
                    optimize(windows, aggregate, semantics_override=semantics)
                    timings.append(time.perf_counter() - started)
                points.append(
                    OverheadPoint(
                        setup=f"{prefix}-{set_size}",
                        semantics=semantics,
                        stats=SampleStats.of(timings),
                    )
                )
    return points


def render_overhead(points: list[OverheadPoint]) -> str:
    rows = [
        (
            p.setup,
            str(p.semantics),
            f"{p.stats.mean * 1e3:.2f}",
            f"{p.stats.std * 1e3:.2f}",
        )
        for p in points
    ]
    return format_table(
        ["Setting", "Semantics", "Mean (ms)", "Std (ms)"],
        rows,
        title="Figure 12: factor-window optimization overhead",
    )


def scotty_comparison(
    set_size: int = 10,
    events: int = DEFAULT_EVENTS,
    runs: int = DEFAULT_RUNS,
    aggregate: AggregateFunction = MIN,
) -> list[PanelResult]:
    """Figures 13/22: Flink (original) vs Scotty (slicing) vs factor
    windows, on the Scotty benchmark generator's constant-rate data."""
    batch = make_stream("synthetic", events)
    panels = []
    for generator in ("random", "sequential"):
        for tumbling in (True, False):
            panels.append(
                run_panel(
                    generator,
                    tumbling,
                    set_size,
                    batch,
                    runs=runs,
                    aggregate=aggregate,
                    include_scotty=True,
                )
            )
    return panels


@dataclass
class CorrelationPanel:
    """Figure 19: predicted vs actual speedup points for one panel."""

    label: str
    predicted: list[float] = field(default_factory=list)
    actual: list[float] = field(default_factory=list)

    @property
    def r(self) -> float:
        return pearson_r(self.predicted, self.actual)


def cost_model_correlation(
    set_sizes: tuple[int, ...] = (5, 10),
    events: int = DEFAULT_EVENTS,
    runs: int = DEFAULT_RUNS,
    aggregate: AggregateFunction = MIN,
    use_pairs: bool = False,
) -> list[CorrelationPanel]:
    """Figure 19: γ_C (cost-model speedup, w/ over w/o factor windows)
    against γ_T (observed throughput speedup), Pearson r per panel.

    With ``use_pairs=True`` the 'actual' axis uses the deterministic
    processed-pair ratio instead of wall-clock throughput — useful for
    a noise-free check that the engines implement the cost model.
    """
    batch = make_stream("synthetic", events)
    panels = []
    for generator in ("random", "sequential"):
        for tumbling in (True, False):
            semantics = _semantics(tumbling)
            gen_label = (
                "RandomGen" if generator.startswith("r") else "SequentialGen"
            )
            sem_label = "partitioned by" if tumbling else "covered by"
            panel = CorrelationPanel(label=f"{gen_label}, '{sem_label}'")
            for set_size in set_sizes:
                result = run_panel(
                    generator,
                    tumbling,
                    set_size,
                    batch,
                    runs=runs,
                    aggregate=aggregate,
                )
                for comparison in result.comparisons:
                    rewritten = comparison.rewritten
                    factors = comparison.with_factors
                    if rewritten is None or factors is None:
                        continue
                    if factors.cost == 0 or rewritten.pairs == 0:
                        continue
                    panel.predicted.append(rewritten.cost / factors.cost)
                    if use_pairs:
                        panel.actual.append(rewritten.pairs / factors.pairs)
                    else:
                        panel.actual.append(
                            factors.throughput / rewritten.throughput
                        )
            panels.append(panel)
    return panels


def render_correlation(panels: list[CorrelationPanel]) -> str:
    rows = [
        (p.label, len(p.predicted), f"{p.r:.3f}") for p in panels
    ]
    return format_table(
        ["Panel", "Points", "Pearson r"],
        rows,
        title="Figure 19: cost-model speedup vs observed speedup",
    )


def render_summary(summaries: list[BoostSummary], title: str) -> str:
    return format_boost_summary_table(summaries, title)
