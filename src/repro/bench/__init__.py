"""Benchmark harness: plan comparison, experiments, reporting, CLI."""

from .analysis import SampleStats, best_fit_line, geometric_mean, pearson_r
from .experiments import (
    DEFAULT_EVENTS,
    DEFAULT_RUNS,
    CorrelationPanel,
    OverheadPoint,
    PanelResult,
    boost_summary_table,
    cost_model_correlation,
    make_stream,
    optimizer_overhead,
    run_panel,
    scotty_comparison,
    throughput_panels,
)
from .harness import BoostSummary, ComparisonResult, PlanRun, compare_plans
from .reporting import (
    format_boost_summary_table,
    format_series,
    format_table,
    render_json,
    write_json_report,
)

__all__ = [
    "BoostSummary",
    "ComparisonResult",
    "CorrelationPanel",
    "DEFAULT_EVENTS",
    "DEFAULT_RUNS",
    "OverheadPoint",
    "PanelResult",
    "PlanRun",
    "SampleStats",
    "best_fit_line",
    "boost_summary_table",
    "compare_plans",
    "cost_model_correlation",
    "format_boost_summary_table",
    "format_series",
    "format_table",
    "geometric_mean",
    "make_stream",
    "optimizer_overhead",
    "pearson_r",
    "render_json",
    "run_panel",
    "scotty_comparison",
    "write_json_report",
    "throughput_panels",
]
