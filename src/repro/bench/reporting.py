"""Plain-text reporting: aligned tables and figure-style series.

The benchmark suite prints the same rows/series the paper's tables and
figures report; these helpers keep that output consistent and legible
in a terminal.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def format_series(
    series: "dict[str, Sequence[float]]",
    x_label: str = "run",
    title: str = "",
    unit: str = "K events/s",
    scale: float = 1e-3,
) -> str:
    """Render figure series as a table: one row per x, one column per
    series (matching the paper's grouped-bar figures)."""
    names = list(series)
    length = max((len(v) for v in series.values()), default=0)
    headers = [x_label] + [f"{n} ({unit})" for n in names]
    rows = []
    for i in range(length):
        row = [str(i + 1)]
        for name in names:
            values = series[name]
            row.append(f"{values[i] * scale:,.0f}" if i < len(values) else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)


def render_json(payload: dict) -> str:
    """Serialize a benchmark payload deterministically (sorted keys).

    Machine-readable counterpart of the text tables: CI stores these
    files (e.g. ``BENCH_engines.json``) so the perf trajectory can be
    diffed across commits.
    """
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_json_report(path: "str | Path", payload: dict) -> Path:
    """Write ``payload`` as deterministic JSON; returns the path.

    Stamps ``meta.cpu_count`` (the host's parallelism) into the payload
    so ``bench compare`` can warn when a baseline produced on different
    hardware is diffed against the current host — wall-clock metrics
    from hosts with different core counts are not comparable.
    """
    meta = payload.setdefault("meta", {})
    meta.setdefault("cpu_count", os.cpu_count())
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_json(payload))
    return target


def format_boost_summary_table(summaries, title: str) -> str:
    """Render a Tables I-IV style boost summary."""
    headers = [
        "Setup",
        "w/o FW (Mean)",
        "w/o FW (Max)",
        "w/ FW (Mean)",
        "w/ FW (Max)",
    ]
    return format_table(headers, [s.row() for s in summaries], title=title)
