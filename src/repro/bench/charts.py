"""ASCII charts for figure-style benchmark output.

The paper's figures are grouped bar charts (throughput per run, one bar
per plan variant) and one scatter plot (Figure 19).  These renderers
produce terminal-friendly equivalents so a benchmark run's shape is
visible at a glance, without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

_BAR = "█"
_SCATTER_MARKS = "ox+*#"


def bar_chart(
    series: "dict[str, Sequence[float]]",
    title: str = "",
    width: int = 50,
    value_format: str = "{:,.0f}",
) -> str:
    """Grouped horizontal bar chart: one group per x-position, one bar
    per series (the shape of the paper's Figures 11-18, 20-22)."""
    if not series:
        return title
    peak = max(
        (v for values in series.values() for v in values if v == v),
        default=0.0,
    )
    label_width = max(len(name) for name in series)
    length = max((len(v) for v in series.values()), default=0)
    lines = [title] if title else []
    for index in range(length):
        lines.append(f"run {index + 1}")
        for name, values in series.items():
            value = values[index] if index < len(values) else float("nan")
            if math.isnan(value):
                bar, shown = "(n/a)", ""
            else:
                filled = 0 if peak <= 0 else round(width * value / peak)
                bar = _BAR * max(filled, 1 if value > 0 else 0)
                shown = " " + value_format.format(value)
            lines.append(f"  {name.ljust(label_width)} |{bar}{shown}")
    return "\n".join(lines)


def scatter_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    title: str = "",
    width: int = 55,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    diagonal: bool = True,
) -> str:
    """ASCII scatter plot with an optional y=x reference line — the
    shape of Figure 19 (predicted vs observed speedup)."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("scatter_plot needs equal, non-empty samples")
    x_max = max(max(xs), 1e-9)
    y_max = max(max(ys), 1e-9)
    if diagonal:
        x_max = y_max = max(x_max, y_max)
    grid = [[" "] * width for _ in range(height)]
    if diagonal:
        for col in range(width):
            row = height - 1 - round((height - 1) * col / (width - 1))
            grid[row][col] = "."
    for x, y in zip(xs, ys):
        col = min(width - 1, round((width - 1) * max(x, 0.0) / x_max))
        row = height - 1 - min(
            height - 1, round((height - 1) * max(y, 0.0) / y_max)
        )
        grid[row][col] = "o"
    lines = [title] if title else []
    lines.append(f"{y_label} (max {y_max:.2f})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} (max {x_max:.2f})")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend (used for rate traces in the adaptive demo)."""
    blocks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return blocks[0] * len(values)
    out = []
    for value in values:
        level = round((len(blocks) - 1) * (value - lo) / (hi - lo))
        out.append(blocks[level])
    return "".join(out)
