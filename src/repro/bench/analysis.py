"""Statistical helpers for the evaluation: correlation and summaries.

Self-contained (NumPy only) so the benchmark harness has no SciPy
dependency; tests cross-check :func:`pearson_r` against
``scipy.stats.pearsonr``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


def pearson_r(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length samples."""
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("pearson_r needs two equal samples of size >= 2")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = math.sqrt(float(xc @ xc) * float(yc @ yc))
    if denom == 0.0:
        return float("nan")
    return float(xc @ yc) / denom


def best_fit_line(
    xs: Sequence[float], ys: Sequence[float]
) -> tuple[float, float]:
    """Least-squares slope and intercept (for Figure-19-style plots)."""
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    slope, intercept = np.polyfit(x, y, 1)
    return float(slope), float(intercept)


@dataclass
class SampleStats:
    """Mean and (population) standard deviation of a sample."""

    mean: float
    std: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "SampleStats":
        array = np.asarray(list(values), dtype=np.float64)
        if array.size == 0:
            return cls(mean=0.0, std=0.0, count=0)
        return cls(
            mean=float(array.mean()),
            std=float(array.std()),
            count=int(array.size),
        )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean — the right average for speedup ratios."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0 or np.any(array <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))
