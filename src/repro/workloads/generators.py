"""Window-set generators — Section V-A-3 of the paper.

* :class:`RandomGen` (Algorithm 6): each window drawn independently.
  Tumbling: pick a seed range ``r0 ∈ R``, then ``r`` uniformly from the
  multiples ``{2·r0, ..., kr·r0}`` (the paper deliberately avoids
  ``r = r0`` so that ``W⟨r0, r0⟩`` remains a discoverable factor
  window).  Hopping: pick a seed slide ``s0 ∈ S``, ``s`` uniformly from
  ``{2·s0, ..., ks·s0}``, and set ``r = 2·s``.
* :class:`SequentialGen`: same seeds, but multipliers are taken
  sequentially (``2, 3, 4, ...``) — the "dashboards at increasing
  horizons" pattern observed in production.

Both generators resample on duplicate draws (window sets are
duplicate-free by definition); determinism comes from explicit seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import InvalidWindowError
from ..windows.window import Window, WindowSet
from .rng import seeded_pyrandom

#: Paper defaults (Section V-B): seeds and multiplier bound.
DEFAULT_SEED_SLIDES = (5, 10, 20)
DEFAULT_SEED_RANGES = (2, 5, 10)
DEFAULT_MULTIPLIER = 50


@dataclass
class RandomGen:
    """Algorithm 6: the RandomGen window-set generator."""

    seed_slides: tuple[int, ...] = DEFAULT_SEED_SLIDES
    seed_ranges: tuple[int, ...] = DEFAULT_SEED_RANGES
    ks: int = DEFAULT_MULTIPLIER
    kr: int = DEFAULT_MULTIPLIER

    name = "RandomGen"

    def generate(
        self, size: int, tumbling: bool, seed: int
    ) -> WindowSet:
        """Generate a duplicate-free window set of ``size`` windows."""
        if size < 1:
            raise InvalidWindowError(f"window-set size must be >= 1, got {size}")
        rng = seeded_pyrandom(seed)
        windows = WindowSet()
        attempts = 0
        while len(windows) < size:
            attempts += 1
            if attempts > 1000 * size:
                raise InvalidWindowError(
                    "could not generate enough distinct windows; "
                    "seed space too small for requested size"
                )
            window = self._draw(rng, tumbling)
            if window not in windows:
                windows.add(window)
        return windows

    def _draw(self, rng: random.Random, tumbling: bool) -> Window:
        if tumbling:
            r0 = rng.choice(self.seed_ranges)
            multiplier = rng.randint(2, self.kr)
            size = multiplier * r0
            return Window(size, size)
        s0 = rng.choice(self.seed_slides)
        multiplier = rng.randint(2, self.ks)
        slide = multiplier * s0
        return Window(2 * slide, slide)


@dataclass
class SequentialGen:
    """The SequentialGen generator: sequential multipliers per seed."""

    seed_slides: tuple[int, ...] = DEFAULT_SEED_SLIDES
    seed_ranges: tuple[int, ...] = DEFAULT_SEED_RANGES
    ks: int = DEFAULT_MULTIPLIER
    kr: int = DEFAULT_MULTIPLIER

    name = "SequentialGen"

    def generate(self, size: int, tumbling: bool, seed: int) -> WindowSet:
        """Windows with multipliers ``2, 3, ..., size + 1`` on one seed."""
        if size < 1:
            raise InvalidWindowError(f"window-set size must be >= 1, got {size}")
        rng = seeded_pyrandom(seed)
        limit = self.kr if tumbling else self.ks
        if size + 1 > limit:
            raise InvalidWindowError(
                f"sequential multipliers exceed k={limit} for size {size}"
            )
        windows = WindowSet()
        if tumbling:
            r0 = rng.choice(self.seed_ranges)
            for multiplier in range(2, size + 2):
                size_ticks = multiplier * r0
                windows.add(Window(size_ticks, size_ticks))
        else:
            s0 = rng.choice(self.seed_slides)
            for multiplier in range(2, size + 2):
                slide = multiplier * s0
                windows.add(Window(2 * slide, slide))
        return windows


GENERATORS = {
    "random": RandomGen,
    "sequential": SequentialGen,
}


def make_generator(name: str, **kwargs):
    """Instantiate a generator by short name (``random``/``sequential``)."""
    key = name.strip().lower()
    for prefix, cls in GENERATORS.items():
        if key.startswith(prefix[0]) or key == prefix:
            return cls(**kwargs)
    raise InvalidWindowError(f"unknown generator {name!r}")
