"""Workload generation: window sets and event streams."""

from .debs import debs_like_stream, real_32m
from .domains import (
    DOMAIN_STREAMS,
    domain_stream,
    flash_crowd_stream,
    iot_telemetry_stream,
    rtgs_payments_stream,
)
from .generators import (
    DEFAULT_MULTIPLIER,
    DEFAULT_SEED_RANGES,
    DEFAULT_SEED_SLIDES,
    GENERATORS,
    RandomGen,
    SequentialGen,
    make_generator,
)
from .rng import seeded_pyrandom, seeded_rng
from .streams import (
    constant_rate_stream,
    synthetic_1m,
    synthetic_10m,
    zipf_stream,
)

__all__ = [
    "DEFAULT_MULTIPLIER",
    "DEFAULT_SEED_RANGES",
    "DEFAULT_SEED_SLIDES",
    "DOMAIN_STREAMS",
    "GENERATORS",
    "RandomGen",
    "SequentialGen",
    "constant_rate_stream",
    "debs_like_stream",
    "domain_stream",
    "flash_crowd_stream",
    "iot_telemetry_stream",
    "make_generator",
    "real_32m",
    "rtgs_payments_stream",
    "seeded_pyrandom",
    "seeded_rng",
    "synthetic_10m",
    "synthetic_1m",
    "zipf_stream",
]
