"""Workload generation: window sets and event streams."""

from .debs import debs_like_stream, real_32m
from .generators import (
    DEFAULT_MULTIPLIER,
    DEFAULT_SEED_RANGES,
    DEFAULT_SEED_SLIDES,
    GENERATORS,
    RandomGen,
    SequentialGen,
    make_generator,
)
from .streams import (
    constant_rate_stream,
    synthetic_1m,
    synthetic_10m,
    zipf_stream,
)

__all__ = [
    "DEFAULT_MULTIPLIER",
    "DEFAULT_SEED_RANGES",
    "DEFAULT_SEED_SLIDES",
    "GENERATORS",
    "RandomGen",
    "SequentialGen",
    "constant_rate_stream",
    "debs_like_stream",
    "make_generator",
    "real_32m",
    "synthetic_10m",
    "synthetic_1m",
    "zipf_stream",
]
