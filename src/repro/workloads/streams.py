"""Synthetic event streams — Section V-A-2.

The paper's synthetic datasets (*Synthetic-1M*, *Synthetic-10M*) are
streams whose "events arrive at a constant pace", matching the cost
model's steady-rate assumption ``η``.  ``constant_rate_stream``
reproduces that: ``rate`` events per tick, Gaussian sensor-like values,
optional multiple device keys.

Benchmark presets default to scaled-down sizes so the suite finishes in
CI time; pass larger ``num_events`` to approach the paper's sizes.
"""

from __future__ import annotations

import numpy as np

from ..engine.events import EventBatch
from ..errors import ExecutionError
from .rng import seeded_rng


def constant_rate_stream(
    num_events: int,
    num_keys: int = 1,
    rate: int = 1,
    seed: int = 1,
    mean: float = 20.0,
    stddev: float = 5.0,
) -> EventBatch:
    """A constant-pace stream: ``rate`` events per tick.

    Values are i.i.d. Gaussian (temperature-like); keys round-robin
    through devices so every device sees the same rate.
    """
    if num_events < 1:
        raise ExecutionError(f"num_events must be >= 1, got {num_events}")
    if rate < 1:
        raise ExecutionError(f"rate must be >= 1, got {rate}")
    rng = seeded_rng(seed)
    indices = np.arange(num_events, dtype=np.int64)
    timestamps = indices // rate
    keys = (indices % num_keys).astype(np.int64)
    values = rng.normal(mean, stddev, num_events)
    horizon = int(timestamps[-1]) + 1
    return EventBatch(
        timestamps=timestamps,
        keys=keys,
        values=values,
        horizon=horizon,
        num_keys=num_keys,
    )


def zipf_stream(
    num_events: int,
    num_keys: int,
    s: float = 1.2,
    rate: int = 1,
    seed: int = 1,
    mean: float = 20.0,
    stddev: float = 5.0,
    integer_values: bool = False,
) -> EventBatch:
    """A constant-pace stream with Zipf-skewed key popularity.

    Key ``rank r`` (1-based) receives a ``1 / r**s`` share of the
    events; ranks are shuffled over the key-id space so hot keys land
    on arbitrary slots of the hash partition, the regime the elastic
    runtime's hot-slot migration exists for (DESIGN.md §12).  ``s=0``
    degenerates to uniform; larger ``s`` concentrates the stream on
    fewer devices.

    ``integer_values`` rounds the Gaussian values to whole numbers, so
    every partial-sum merge is exact float64 arithmetic and results
    stay bit-identical under *any* re-association — including the
    extra flush boundaries hot-slot migration inserts mid-chunk.
    """
    if num_events < 1:
        raise ExecutionError(f"num_events must be >= 1, got {num_events}")
    if num_keys < 1:
        raise ExecutionError(f"num_keys must be >= 1, got {num_keys}")
    if rate < 1:
        raise ExecutionError(f"rate must be >= 1, got {rate}")
    if s < 0:
        raise ExecutionError(f"Zipf exponent must be >= 0, got {s}")
    rng = seeded_rng(seed)
    weights = 1.0 / np.arange(1, num_keys + 1, dtype=np.float64) ** s
    weights /= weights.sum()
    rank_to_key = rng.permutation(num_keys).astype(np.int64)
    indices = np.arange(num_events, dtype=np.int64)
    timestamps = indices // rate
    keys = rank_to_key[rng.choice(num_keys, size=num_events, p=weights)]
    values = rng.normal(mean, stddev, num_events)
    if integer_values:
        values = np.round(values)
    horizon = int(timestamps[-1]) + 1
    return EventBatch(
        timestamps=timestamps,
        keys=keys,
        values=values,
        horizon=horizon,
        num_keys=num_keys,
    )


def synthetic_1m(scale: float = 1.0, num_keys: int = 1, seed: int = 1) -> EventBatch:
    """The paper's *Synthetic-1M* dataset (scaled by ``scale``)."""
    return constant_rate_stream(
        max(1, int(1_000_000 * scale)), num_keys=num_keys, seed=seed
    )


def synthetic_10m(scale: float = 1.0, num_keys: int = 1, seed: int = 1) -> EventBatch:
    """The paper's *Synthetic-10M* dataset (scaled by ``scale``)."""
    return constant_rate_stream(
        max(1, int(10_000_000 * scale)), num_keys=num_keys, seed=seed
    )
