"""Synthetic event streams — Section V-A-2.

The paper's synthetic datasets (*Synthetic-1M*, *Synthetic-10M*) are
streams whose "events arrive at a constant pace", matching the cost
model's steady-rate assumption ``η``.  ``constant_rate_stream``
reproduces that: ``rate`` events per tick, Gaussian sensor-like values,
optional multiple device keys.

Benchmark presets default to scaled-down sizes so the suite finishes in
CI time; pass larger ``num_events`` to approach the paper's sizes.
"""

from __future__ import annotations

import numpy as np

from ..engine.events import EventBatch
from ..errors import ExecutionError


def constant_rate_stream(
    num_events: int,
    num_keys: int = 1,
    rate: int = 1,
    seed: int = 1,
    mean: float = 20.0,
    stddev: float = 5.0,
) -> EventBatch:
    """A constant-pace stream: ``rate`` events per tick.

    Values are i.i.d. Gaussian (temperature-like); keys round-robin
    through devices so every device sees the same rate.
    """
    if num_events < 1:
        raise ExecutionError(f"num_events must be >= 1, got {num_events}")
    if rate < 1:
        raise ExecutionError(f"rate must be >= 1, got {rate}")
    rng = np.random.default_rng(seed)
    indices = np.arange(num_events, dtype=np.int64)
    timestamps = indices // rate
    keys = (indices % num_keys).astype(np.int64)
    values = rng.normal(mean, stddev, num_events)
    horizon = int(timestamps[-1]) + 1
    return EventBatch(
        timestamps=timestamps,
        keys=keys,
        values=values,
        horizon=horizon,
        num_keys=num_keys,
    )


def synthetic_1m(scale: float = 1.0, num_keys: int = 1, seed: int = 1) -> EventBatch:
    """The paper's *Synthetic-1M* dataset (scaled by ``scale``)."""
    return constant_rate_stream(
        max(1, int(1_000_000 * scale)), num_keys=num_keys, seed=seed
    )


def synthetic_10m(scale: float = 1.0, num_keys: int = 1, seed: int = 1) -> EventBatch:
    """The paper's *Synthetic-10M* dataset (scaled by ``scale``)."""
    return constant_rate_stream(
        max(1, int(10_000_000 * scale)), num_keys=num_keys, seed=seed
    )
