"""A DEBS-2012-like manufacturing sensor stream — Section V-A-2.

The paper's *Real-32M* dataset pairs the DEBS 2012 Grand Challenge
timestamps with the ``mf01`` column ("electrical power main-phase 1"
sensor readings from manufacturing equipment, sampled at a fixed rate).
The trace itself is not redistributable/offline-available, so this
module synthesizes a stream with the same relevant structure:

* fixed sampling rate (one reading per tick — aggregation *cost* in
  every engine depends only on event timing, which this preserves);
* a realistic value process for ``mf01``: a base power level with slow
  drift, a periodic machine-cycle component, Gaussian measurement
  noise, and occasional load bursts (power spikes while a tool
  engages).

See DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from ..engine.events import EventBatch
from ..errors import ExecutionError
from .rng import seeded_rng

#: Rough level of the mf01 sensor in the original trace (raw ADC-like units).
MF01_BASE_LEVEL = 10_000.0


def debs_like_stream(
    num_events: int,
    num_keys: int = 1,
    seed: int = 7,
    burst_probability: float = 0.001,
    burst_magnitude: float = 2_500.0,
) -> EventBatch:
    """Synthesize a *Real-32M*-shaped stream (scaled to ``num_events``).

    ``num_keys`` models multiple monitored machines; the original trace
    has one, but the IoT-dashboard scenario of Section I groups by
    device, so multi-key streams are useful in examples.
    """
    if num_events < 1:
        raise ExecutionError(f"num_events must be >= 1, got {num_events}")
    rng = seeded_rng(seed)
    indices = np.arange(num_events, dtype=np.int64)
    timestamps = indices.copy()
    keys = (indices % num_keys).astype(np.int64)

    ticks = indices.astype(np.float64)
    drift = 500.0 * np.sin(2.0 * np.pi * ticks / max(num_events, 2))
    machine_cycle = 300.0 * np.sin(2.0 * np.pi * ticks / 360.0)
    noise = rng.normal(0.0, 50.0, num_events)
    bursts = np.where(
        rng.random(num_events) < burst_probability,
        rng.exponential(burst_magnitude, num_events),
        0.0,
    )
    values = MF01_BASE_LEVEL + drift + machine_cycle + noise + bursts

    return EventBatch(
        timestamps=timestamps,
        keys=keys,
        values=values,
        horizon=num_events,
        num_keys=num_keys,
    )


def real_32m(scale: float = 1.0, num_keys: int = 1, seed: int = 7) -> EventBatch:
    """The paper's *Real-32M* dataset analogue (scaled by ``scale``)."""
    return debs_like_stream(
        max(1, int(32_000_000 * scale)), num_keys=num_keys, seed=seed
    )
