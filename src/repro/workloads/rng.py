"""Shared seeded-RNG plumbing for every workload generator.

Every stream and window-set generator in :mod:`repro.workloads` is a
pure function of its arguments — the whole invariant matrix (9–13)
compares runs of *the same stream*, so a generator that read hidden
module-level RNG state would silently break bit-identity between the
oracle run and the run under test.  This module is the single place
that turns a seed into generator state, so the rule ("an explicit
seed, no global state, ever") is enforced once and pinned by
``tests/workloads/test_determinism.py``.
"""

from __future__ import annotations

import random

import numpy as np

from ..errors import ExecutionError

__all__ = ["seeded_rng", "seeded_pyrandom"]


def seeded_rng(seed: "int | None") -> np.random.Generator:
    """A fresh, isolated NumPy generator for ``seed``.

    ``None`` raises instead of falling back to OS entropy: a workload
    without a pinned seed cannot anchor a digest, a baseline, or a
    property test, so an unseeded generator is always a caller bug.
    """
    if seed is None:
        raise ExecutionError(
            "workload generators need an explicit seed (got None); "
            "an unseeded stream cannot reproduce"
        )
    return np.random.default_rng(int(seed))


def seeded_pyrandom(seed: "int | None") -> random.Random:
    """A fresh stdlib :class:`random.Random` for ``seed`` — the
    window-set generators' RNG (their draws predate NumPy use and the
    committed paper tables depend on the stdlib sequence)."""
    if seed is None:
        raise ExecutionError(
            "workload generators need an explicit seed (got None); "
            "an unseeded window set cannot reproduce"
        )
    return random.Random(int(seed))
