"""Domain-shaped streams for the scenario library (docs/scenarios.md).

Three production-shaped workloads, each a pure function of
``(num_events, num_keys, seed)`` like every other generator in this
package:

* :func:`rtgs_payments_stream` — an RTGS-style interbank payments day
  (after SimCash, PAPERS.md): per-account payment amounts in whole
  cents with a heavy lognormal tail, Zipf-skewed account activity, and
  the canonical settlement-day rate curve (morning ramp, midday
  steady-state, end-of-day deadline spike).  Windowed SUM/COUNT per
  account are the exposure/velocity aggregates an RTGS throttle reads.
* :func:`iot_telemetry_stream` — bursty IoT telemetry: each device
  reports around its own integer baseline, device popularity is
  extremely Zipf-skewed (a few chatty gateways dominate), and the
  arrival rate alternates quiet stretches with bursts up to 32× —
  the hot-slot-migration regime of DESIGN.md §12.
* :func:`flash_crowd_stream` — a flash crowd: a quiet stream that
  jumps to a 32× rate spike concentrated on a handful of suddenly-hot
  keys, then decays to an elevated plateau.

Every value these generators emit is a whole number stored in float64:
integer partial sums merge exactly, so results stay bit-identical
under *any* re-association — resharding, rebalancing, worker recovery
— which is what lets scenario files commit one expected digest for
all backends (the ``integer_values`` discipline of
:func:`~repro.workloads.streams.zipf_stream`).
"""

from __future__ import annotations

import numpy as np

from ..engine.events import EventBatch
from ..errors import ExecutionError
from .rng import seeded_rng

__all__ = [
    "DOMAIN_STREAMS",
    "domain_stream",
    "flash_crowd_stream",
    "iot_telemetry_stream",
    "rtgs_payments_stream",
]


def _phased_timestamps(
    num_events: int, phases: "tuple[tuple[float, int], ...]"
) -> np.ndarray:
    """Timestamps for a piecewise-constant rate profile.

    ``phases`` is ``((until_fraction, rate), ...)`` with fractions
    strictly increasing to 1.0: the first ``until*N`` events arrive at
    ``rate`` events/tick, and so on — each phase continues the clock
    where the previous one stopped, so timestamps are nondecreasing.
    """
    bounds = [0] + [round(until * num_events) for until, _ in phases]
    bounds[-1] = num_events
    parts = []
    tick = 0
    for (_, rate), lo, hi in zip(phases, bounds[:-1], bounds[1:]):
        count = hi - lo
        if count <= 0:
            continue
        part = tick + np.arange(count, dtype=np.int64) // rate
        parts.append(part)
        tick = int(part[-1]) + 1
    return np.concatenate(parts)


def _zipf_keys(
    rng: np.random.Generator, num_events: int, num_keys: int, s: float
) -> np.ndarray:
    """Zipf-skewed key draws with ranks shuffled over the id space
    (hot keys land on arbitrary hash slots, as in ``zipf_stream``)."""
    weights = 1.0 / np.arange(1, num_keys + 1, dtype=np.float64) ** s
    weights /= weights.sum()
    rank_to_key = rng.permutation(num_keys).astype(np.int64)
    return rank_to_key[rng.choice(num_keys, size=num_events, p=weights)]


def _require_shape(num_events: int, num_keys: int) -> None:
    if num_events < 1:
        raise ExecutionError(f"num_events must be >= 1, got {num_events}")
    if num_keys < 1:
        raise ExecutionError(f"num_keys must be >= 1, got {num_keys}")


def rtgs_payments_stream(
    num_events: int,
    num_keys: int = 64,
    seed: int = 11,
    skew: float = 1.1,
) -> EventBatch:
    """One RTGS settlement day: payments between ``num_keys`` accounts.

    Amounts are whole cents with a lognormal tail (most payments are
    routine, a few are enormous — the shape gridlock studies assume);
    account activity is Zipf(``skew``); the rate curve ramps through
    the morning, holds through midday, and spikes 3× at the end-of-day
    settlement deadline.
    """
    _require_shape(num_events, num_keys)
    rng = seeded_rng(seed)
    timestamps = _phased_timestamps(
        num_events, ((0.3, 4), (0.8, 8), (1.0, 24))
    )
    keys = _zipf_keys(rng, num_events, num_keys, skew)
    # Whole cents: median ~e^10 ≈ 22k cents, tail into the millions.
    values = np.round(rng.lognormal(mean=10.0, sigma=1.0, size=num_events))
    return EventBatch(
        timestamps=timestamps,
        keys=keys,
        values=values,
        horizon=int(timestamps[-1]) + 1,
        num_keys=num_keys,
    )


def iot_telemetry_stream(
    num_events: int,
    num_keys: int = 256,
    seed: int = 23,
    skew: float = 1.6,
) -> EventBatch:
    """Bursty device telemetry with extreme key skew.

    Each device reports integer readings around its own baseline;
    device popularity is Zipf(``skew``) (default 1.6 — far past the
    point where a static hash partition serializes on the hot shard),
    and the arrival rate alternates quiet stretches with bursts up to
    32× as gateways flush their buffers.
    """
    _require_shape(num_events, num_keys)
    rng = seeded_rng(seed)
    timestamps = _phased_timestamps(
        num_events,
        ((0.2, 2), (0.3, 32), (0.55, 2), (0.65, 24), (0.9, 4), (1.0, 32)),
    )
    keys = _zipf_keys(rng, num_events, num_keys, skew)
    baselines = np.round(rng.normal(500.0, 100.0, num_keys))
    noise = np.round(rng.normal(0.0, 20.0, num_events))
    spikes = np.where(
        rng.random(num_events) < 0.002,
        np.round(rng.exponential(400.0, num_events)),
        0.0,
    )
    values = baselines[keys] + noise + spikes
    return EventBatch(
        timestamps=timestamps,
        keys=keys,
        values=values,
        horizon=int(timestamps[-1]) + 1,
        num_keys=num_keys,
    )


def flash_crowd_stream(
    num_events: int,
    num_keys: int = 128,
    seed: int = 31,
) -> EventBatch:
    """A flash crowd: quiet → 32× spike on a few hot keys → decay.

    The spike concentrates traffic on a handful of suddenly-popular
    keys (Zipf s jumps from 0.3 to 2.2 mid-stream), so both the rate
    *and* the key distribution shift at once — the case rate-driven
    replanning and hot-slot migration have to absorb together.
    """
    _require_shape(num_events, num_keys)
    rng = seeded_rng(seed)
    phases = ((0.45, 2), (0.6, 64), (1.0, 6))
    skews = (0.3, 2.2, 0.8)
    timestamps = _phased_timestamps(num_events, phases)
    bounds = [0] + [round(until * num_events) for until, _ in phases]
    bounds[-1] = num_events
    key_parts = [
        _zipf_keys(rng, hi - lo, num_keys, s)
        for s, lo, hi in zip(skews, bounds[:-1], bounds[1:])
        if hi > lo
    ]
    keys = np.concatenate(key_parts)
    values = np.round(rng.normal(50.0, 15.0, num_events))
    return EventBatch(
        timestamps=timestamps,
        keys=keys,
        values=values,
        horizon=int(timestamps[-1]) + 1,
        num_keys=num_keys,
    )


#: Named domain profiles a scenario's ``stream.profile`` can select.
DOMAIN_STREAMS = {
    "rtgs_payments": rtgs_payments_stream,
    "iot_telemetry": iot_telemetry_stream,
    "flash_crowd": flash_crowd_stream,
}


def domain_stream(
    profile: str, num_events: int, num_keys: int, seed: int
) -> EventBatch:
    """Build a named domain stream (the scenario loader's dispatch)."""
    try:
        build = DOMAIN_STREAMS[profile]
    except KeyError:
        known = ", ".join(sorted(DOMAIN_STREAMS))
        raise ExecutionError(
            f"unknown stream profile {profile!r}; known domain "
            f"profiles: {known} (or 'synthetic')"
        ) from None
    return build(num_events, num_keys=num_keys, seed=seed)
