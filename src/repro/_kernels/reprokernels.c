/* Compiled hot kernels for the repro engine (see repro/_kernels/__init__.py).
 *
 * Three kernels, each a drop-in for a NumPy-glue hot spot:
 *
 *   repro_counting_argsort  — stable counting-sort argsort over segment
 *                             codes, plus segment starts/ids.  Replaces
 *                             the O(n log n) stable np.argsort (and the
 *                             boundary-finding glue) at the head of
 *                             aggregates.base.segment_reduce with one
 *                             O(n + num_segments) pass.  The FP reduce
 *                             itself stays in NumPy's own reduceat, so
 *                             results are bit-identical by construction
 *                             (counting sort and np.argsort(stable)
 *                             produce the same permutation).
 *
 *   repro_seg_holistic      — segmented holistic compute (quantile /
 *                             count-distinct).  Replaces the global
 *                             lexsort with a counting-bucket pass plus a
 *                             per-segment sort.  Bit-identical: results
 *                             depend only on each segment's ascending
 *                             (NaN-last) value sequence, and the closed
 *                             forms repeat the NumPy index arithmetic
 *                             operation for operation.
 *
 *   repro_reorder_push_batch — batch push into a (ts, seq)-ordered binary
 *                             heap with a trailing watermark.  Replaces a
 *                             per-event Python heapq loop; (ts, seq) is a
 *                             total order, so the release sequence is
 *                             identical to heapq's.
 *
 * Plain C99 + libm only; built on demand with `cc -O3 -shared -fPIC`.
 */

#include <math.h>
#include <stdint.h>
#include <string.h>

#define API __attribute__((visibility("default")))

/* ---------------------------------------------------------------- */
/* counting-sort argsort over segment codes                          */
/* ---------------------------------------------------------------- */

/* Stable argsort of `codes` (each in [0, num_segments)) by counting
 * buckets.  Fills order[n] with the permutation (identical to
 * np.argsort(codes, kind="stable")), and starts/seg_ids with the
 * grouped-array offsets and ids of the non-empty segments, ascending.
 * counts/offsets are caller-provided scratch of length num_segments.
 * Returns the number of non-empty segments. */
API int64_t repro_counting_argsort(const int64_t *codes, int64_t n,
                                   int64_t num_segments,
                                   int64_t *counts, int64_t *offsets,
                                   int64_t *order, int64_t *starts,
                                   int64_t *seg_ids)
{
    int64_t i, s, total = 0, written = 0;
    memset(counts, 0, (size_t)num_segments * sizeof(int64_t));
    for (i = 0; i < n; i++)
        counts[codes[i]]++;
    for (s = 0; s < num_segments; s++) {
        offsets[s] = total;
        if (counts[s] > 0) {
            starts[written] = total;
            seg_ids[written] = s;
            written++;
        }
        total += counts[s];
    }
    for (i = 0; i < n; i++)
        order[offsets[codes[i]]++] = i;
    return written;
}

/* ---------------------------------------------------------------- */
/* segmented holistic compute                                        */
/* ---------------------------------------------------------------- */

static void insertion_sort(double *a, int64_t lo, int64_t hi)
{
    int64_t i, j;
    for (i = lo + 1; i <= hi; i++) {
        double v = a[i];
        j = i - 1;
        while (j >= lo && a[j] > v) {
            a[j + 1] = a[j];
            j--;
        }
        a[j + 1] = v;
    }
}

/* Quicksort over NaN-free doubles (Hoare partition, median-of-3 pivot,
 * recursion on the smaller side only). */
static void quicksort(double *a, int64_t lo, int64_t hi)
{
    while (hi - lo > 24) {
        int64_t mid = lo + (hi - lo) / 2;
        double p0 = a[lo], p1 = a[mid], p2 = a[hi];
        double pivot = p0 < p1 ? (p1 < p2 ? p1 : (p0 < p2 ? p2 : p0))
                               : (p0 < p2 ? p0 : (p1 < p2 ? p2 : p1));
        int64_t i = lo, j = hi;
        while (i <= j) {
            while (a[i] < pivot) i++;
            while (a[j] > pivot) j--;
            if (i <= j) {
                double t = a[i]; a[i] = a[j]; a[j] = t;
                i++; j--;
            }
        }
        if (j - lo < hi - i) {
            quicksort(a, lo, j);
            lo = i;
        } else {
            quicksort(a, i, hi);
            hi = j;
        }
    }
    insertion_sort(a, lo, hi);
}

/* Ascending sort with NaNs partitioned to the end (NumPy order). */
static void sort_doubles(double *a, int64_t n)
{
    int64_t i = 0, m = n;
    while (i < m) {
        if (isnan(a[i])) {
            double t = a[i];
            m--;
            a[i] = a[m];
            a[m] = t;
        } else {
            i++;
        }
    }
    if (m > 1)
        quicksort(a, 0, m - 1);
}

#define KIND_QUANTILE 0
#define KIND_COUNT_DISTINCT 1

/* Group values by code (counting buckets, stable), sort each segment,
 * and evaluate the holistic closed form.  Scratch arrays are provided
 * by the caller: counts[num_segments] (zeroing done here),
 * offsets[num_segments], grouped[n].  Non-empty segment ids and their
 * results are written compacted; returns how many were written. */
API int64_t repro_seg_holistic(const int64_t *codes, const double *values,
                               int64_t n, int64_t num_segments,
                               int32_t kind, double q,
                               int64_t *counts, int64_t *offsets,
                               double *grouped,
                               int64_t *seg_ids, double *results)
{
    int64_t i, s, total = 0, written = 0;
    memset(counts, 0, (size_t)num_segments * sizeof(int64_t));
    for (i = 0; i < n; i++)
        counts[codes[i]]++;
    for (s = 0; s < num_segments; s++) {
        offsets[s] = total;
        total += counts[s];
    }
    /* Stable scatter; offsets[s] ends up pointing at the segment end. */
    for (i = 0; i < n; i++)
        grouped[offsets[codes[i]]++] = values[i];
    for (s = 0; s < num_segments; s++) {
        int64_t c = counts[s];
        double *seg, res;
        if (c == 0)
            continue;
        seg = grouped + (offsets[s] - c);
        sort_doubles(seg, c);
        if (kind == KIND_QUANTILE) {
            if (isnan(seg[c - 1])) {
                res = NAN;
            } else {
                double position = (double)(c - 1) * q;
                int64_t lo = (int64_t)floor(position);
                int64_t hi = (int64_t)ceil(position);
                double frac = position - (double)lo;
                double low = seg[lo], high = seg[hi];
                res = low + (high - low) * frac;
            }
        } else {
            int64_t distinct = 0, has_nan = 0;
            for (i = 0; i < c; i++) {
                if (isnan(seg[i])) { /* NaNs sorted to the end */
                    has_nan = 1;
                    break;
                }
                if (distinct == 0 || seg[i] != seg[i - 1])
                    distinct++;
            }
            res = (double)(distinct + has_nan);
        }
        seg_ids[written] = s;
        results[written] = res;
        written++;
    }
    return written;
}

/* ---------------------------------------------------------------- */
/* reorder-buffer batch push                                         */
/* ---------------------------------------------------------------- */

static inline int heap_less(const int64_t *ts, const int64_t *seq,
                            int64_t a, int64_t b)
{
    return ts[a] < ts[b] || (ts[a] == ts[b] && seq[a] < seq[b]);
}

static inline void heap_swap(int64_t *ts, int64_t *seq, int64_t *key,
                             double *val, int64_t a, int64_t b)
{
    int64_t t;
    double v;
    t = ts[a]; ts[a] = ts[b]; ts[b] = t;
    t = seq[a]; seq[a] = seq[b]; seq[b] = t;
    t = key[a]; key[a] = key[b]; key[b] = t;
    v = val[a]; val[a] = val[b]; val[b] = v;
}

/* Push a batch of (ts, key, value) events through the reorder heap.
 *
 * The heap lives in four parallel arrays (caller guarantees capacity
 * >= *heap_size_io + n); state is [max_seen, next_seq].  Released
 * events are appended to out_* (capacity >= heap_size + n); indices of
 * late-dropped inputs and their lateness go to late_* (capacity >= n).
 * Returns the released count; *late_count_out receives the late count.
 */
API int64_t repro_reorder_push_batch(
    int64_t *hts, int64_t *hseq, int64_t *hkey, double *hval,
    int64_t *heap_size_io,
    const int64_t *ts, const int64_t *keys, const double *values,
    int64_t n, int64_t max_lateness, int64_t *state,
    int64_t *out_ts, int64_t *out_keys, double *out_values,
    int64_t *late_idx, int64_t *late_lateness, int64_t *late_count_out)
{
    int64_t hs = *heap_size_io;
    int64_t max_seen = state[0], seq = state[1];
    int64_t released = 0, late = 0;
    int64_t i;
    for (i = 0; i < n; i++) {
        int64_t t = ts[i];
        int64_t wm = max_seen - max_lateness;
        int64_t pos;
        if (t < wm) {
            late_idx[late] = i;
            late_lateness[late] = wm - t;
            late++;
            continue;
        }
        pos = hs++;
        hts[pos] = t;
        hseq[pos] = seq++;
        hkey[pos] = keys[i];
        hval[pos] = values[i];
        while (pos > 0) {
            int64_t parent = (pos - 1) / 2;
            if (!heap_less(hts, hseq, pos, parent))
                break;
            heap_swap(hts, hseq, hkey, hval, pos, parent);
            pos = parent;
        }
        if (t > max_seen)
            max_seen = t;
        wm = max_seen - max_lateness;
        while (hs > 0 && hts[0] < wm) {
            out_ts[released] = hts[0];
            out_keys[released] = hkey[0];
            out_values[released] = hval[0];
            released++;
            hs--;
            if (hs > 0) {
                int64_t p = 0;
                hts[0] = hts[hs];
                hseq[0] = hseq[hs];
                hkey[0] = hkey[hs];
                hval[0] = hval[hs];
                for (;;) {
                    int64_t l = 2 * p + 1, r = l + 1, m = p;
                    if (l < hs && heap_less(hts, hseq, l, m))
                        m = l;
                    if (r < hs && heap_less(hts, hseq, r, m))
                        m = r;
                    if (m == p)
                        break;
                    heap_swap(hts, hseq, hkey, hval, p, m);
                    p = m;
                }
            }
        }
    }
    state[0] = max_seen;
    state[1] = seq;
    *heap_size_io = hs;
    *late_count_out = late;
    return released;
}
