"""Optional compiled hot kernels behind a pure-NumPy fallback.

``reprokernels.c`` holds three small C kernels for the engine's scalar
hot spots (scatter segment-reduce, segmented holistic compute, and
reorder-buffer batch insert).  This package builds them **on demand**
with whatever C compiler the host has (``cc`` / ``gcc`` / ``clang``,
overridable via ``REPRO_CC``), caches the shared object per source
hash, and loads it through :mod:`ctypes` — no build-time dependency, no
compiled artifact in the tree, and a byte-for-byte pure-Python fallback
when no compiler is available.

Control knob — the ``REPRO_KERNELS`` environment variable:

* unset / ``auto`` — kernels are used only where a caller explicitly
  asks for them (the ``columnar-panes-native`` engine path), silently
  falling back to NumPy when they cannot be built;
* ``1`` — kernels are used *everywhere* segment reduction, holistic
  segment compute, or batch reorder runs (all engine paths and the
  live runtime), still falling back silently;
* ``require`` — like ``1`` but raising :class:`KernelsUnavailable`
  instead of falling back (CI uses this to pin the compiled path);
* ``0`` — kernels are never used, even where explicitly requested.

Everything here depends only on the standard library and NumPy, so the
aggregate/engine layers can import it without cycles.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = [
    "KernelsUnavailable",
    "available",
    "availability_error",
    "globally_enabled",
    "resolve",
    "supports_segment_reduce",
    "segment_reduce",
    "holistic_kind",
    "holistic_segment_values",
    "NativeReorderHeap",
]


class KernelsUnavailable(RuntimeError):
    """Raised when ``REPRO_KERNELS=require`` but no kernel library."""


_SOURCE = Path(__file__).with_name("reprokernels.c")

#: Ufuncs segment_reduce may route through the native grouping kernel.
#: Any ufunc works for correctness (the reduce stays in NumPy); the
#: allowlist just keeps the contract explicit.
SEG_UFUNCS = (np.add, np.minimum, np.maximum)

_lib = None
_load_attempted = False
_load_error: "str | None" = None


def _mode() -> str:
    return os.environ.get("REPRO_KERNELS", "auto").strip().lower()


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNELS_CACHE")
    if override:
        return Path(override)
    uid = os.getuid() if hasattr(os, "getuid") else "user"
    return Path(tempfile.gettempdir()) / f"repro-kernels-{uid}"


def _find_compiler() -> "str | None":
    override = os.environ.get("REPRO_CC")
    if override:
        return shutil.which(override) or override
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    return None


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    p = ctypes.c_void_p
    i64 = ctypes.c_int64
    i32 = ctypes.c_int32
    f64 = ctypes.c_double
    lib.repro_counting_argsort.argtypes = [p, i64, i64, p, p, p, p, p]
    lib.repro_counting_argsort.restype = i64
    lib.repro_seg_holistic.argtypes = [p, p, i64, i64, i32, f64, p, p, p, p, p]
    lib.repro_seg_holistic.restype = i64
    lib.repro_reorder_push_batch.argtypes = [
        p, p, p, p, p, p, p, p, i64, i64, p, p, p, p, p, p, p,
    ]
    lib.repro_reorder_push_batch.restype = i64
    return lib


def _build_and_load() -> ctypes.CDLL:
    source = _SOURCE.read_bytes()
    digest = hashlib.sha256(source).hexdigest()[:16]
    cache = _cache_dir()
    target = cache / f"reprokernels-{digest}.so"
    if not target.exists():
        compiler = _find_compiler()
        if compiler is None:
            raise KernelsUnavailable(
                "no C compiler found (tried $REPRO_CC, cc, gcc, clang)"
            )
        cache.mkdir(parents=True, exist_ok=True)
        tmp = cache / f"reprokernels-{digest}.{os.getpid()}.tmp.so"
        cmd = [
            compiler, "-O3", "-shared", "-fPIC",
            "-o", str(tmp), str(_SOURCE), "-lm",
        ]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True)
        except OSError as exc:
            raise KernelsUnavailable(
                f"compiler {compiler} is not runnable: {exc}"
            ) from exc
        if proc.returncode != 0:
            tmp.unlink(missing_ok=True)
            raise KernelsUnavailable(
                f"kernel build failed ({' '.join(cmd)}): {proc.stderr.strip()}"
            )
        os.replace(tmp, target)  # atomic: concurrent builders race safely
    return _bind(ctypes.CDLL(str(target)))


def _load() -> "ctypes.CDLL | None":
    global _lib, _load_attempted, _load_error
    if not _load_attempted:
        _load_attempted = True
        try:
            _lib = _build_and_load()
        except KernelsUnavailable as exc:
            _load_error = str(exc)
        except OSError as exc:  # pragma: no cover - corrupt cache etc.
            _load_error = f"kernel library failed to load: {exc}"
    return _lib


def available() -> bool:
    """True when the compiled library is (or can be) loaded."""
    if _mode() == "0":
        return False
    return _load() is not None


def availability_error() -> "str | None":
    """Why kernels are unavailable (None when they are available)."""
    if _mode() == "0":
        return "disabled via REPRO_KERNELS=0"
    _load()
    return _load_error


def globally_enabled() -> bool:
    """True when every reduction site should use the kernels."""
    return _mode() in ("1", "require") and available()


def resolve(native: "bool | None") -> bool:
    """Decide whether a call site should take the native path.

    ``native=True`` is an explicit request (the native engine path),
    ``None`` defers to ``REPRO_KERNELS``, ``False`` forces NumPy.
    ``REPRO_KERNELS=0`` wins over everything; ``require`` raises when
    the library cannot be built.
    """
    mode = _mode()
    if mode == "0" or native is False:
        return False
    if mode == "require":
        if not available():
            raise KernelsUnavailable(
                f"REPRO_KERNELS=require but kernels are unavailable: "
                f"{_load_error}"
            )
        return True
    if native is True:
        return available()
    return mode == "1" and available()


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


def _contiguous(array, dtype) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(array), dtype=dtype)


# ------------------------------------------------------------------ #
# segment scatter-reduce                                             #
# ------------------------------------------------------------------ #

def supports_segment_reduce(aggregate) -> bool:
    """True when every lifted component reduces via add/min/max."""
    ufuncs = aggregate.component_ufuncs
    return bool(ufuncs) and all(u in SEG_UFUNCS for u in ufuncs)


def counting_argsort(codes: np.ndarray, num_segments: int):
    """Stable O(n) argsort of segment codes via the native kernel.

    Returns ``(order, starts, segment_ids)`` — exactly what the head of
    ``AggregateFunction.segment_reduce`` computes with a stable
    ``np.argsort`` plus boundary-finding, in one C pass.
    """
    lib = _load()
    codes = _contiguous(codes, np.int64)
    n = codes.size
    counts = np.empty(num_segments, dtype=np.int64)
    offsets = np.empty(num_segments, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)
    starts = np.empty(num_segments, dtype=np.int64)
    seg_ids = np.empty(num_segments, dtype=np.int64)
    written = lib.repro_counting_argsort(
        _ptr(codes), ctypes.c_int64(n), ctypes.c_int64(num_segments),
        _ptr(counts), _ptr(offsets), _ptr(order), _ptr(starts),
        _ptr(seg_ids),
    )
    return order, starts[:written], seg_ids[:written]


def segment_reduce(aggregate, codes, values, num_segments):
    """Native drop-in for ``AggregateFunction.segment_reduce``.

    Identical contract: one identity-initialised float64 array of
    length ``num_segments`` per component.  Only the grouping runs in
    C; the FP reduction is NumPy's own ``reduceat`` over the same
    per-segment sequence the pure path reduces, so the results are
    bit-identical.
    """
    codes = _contiguous(codes, np.int64)
    components = aggregate.lift(np.asarray(values))
    out = tuple(
        np.full(num_segments, ident, dtype=np.float64)
        for ident in aggregate.identity_components
    )
    if codes.size == 0:
        return out
    order, starts, seg_ids = counting_argsort(codes, num_segments)
    for ufunc, comp, slot in zip(
        aggregate.component_ufuncs, components, out
    ):
        comp = _contiguous(comp, np.float64)
        slot[seg_ids] = ufunc.reduceat(comp[order], starts)
    return out


# ------------------------------------------------------------------ #
# segmented holistic compute                                         #
# ------------------------------------------------------------------ #

def holistic_kind(aggregate) -> "tuple | None":
    """The native closed form an aggregate declares, if any."""
    return getattr(aggregate, "native_segment_kind", None)


def holistic_segment_values(codes, values, aggregate):
    """Native drop-in for ``engine.columnar.holistic_segment_values``.

    Returns ``(segment_ids, results)`` for the non-empty segments, in
    ascending segment order — the same contract as the NumPy path.
    """
    kind = holistic_kind(aggregate)
    lib = _load()
    codes = _contiguous(codes, np.int64)
    values = _contiguous(values, np.float64)
    if codes.size == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    num_segments = int(codes.max()) + 1
    kind_code = 0 if kind[0] == "quantile" else 1
    q = float(kind[1]) if kind[0] == "quantile" else 0.0
    counts = np.empty(num_segments, dtype=np.int64)
    offsets = np.empty(num_segments, dtype=np.int64)
    grouped = np.empty(codes.size, dtype=np.float64)
    seg_ids = np.empty(num_segments, dtype=np.int64)
    results = np.empty(num_segments, dtype=np.float64)
    written = lib.repro_seg_holistic(
        _ptr(codes), _ptr(values), ctypes.c_int64(codes.size),
        ctypes.c_int64(num_segments), ctypes.c_int32(kind_code),
        ctypes.c_double(q), _ptr(counts), _ptr(offsets), _ptr(grouped),
        _ptr(seg_ids), _ptr(results),
    )
    return seg_ids[:written], results[:written]


# ------------------------------------------------------------------ #
# reorder-buffer batch push                                          #
# ------------------------------------------------------------------ #

class NativeReorderHeap:
    """Stateless-per-call wrapper around ``repro_reorder_push_batch``.

    The heap itself lives in four parallel NumPy arrays owned by the
    caller (the :class:`~repro.engine.outoforder.ReorderBuffer`), so the
    buffer can move freely between the per-event Python path and this
    batch path.
    """

    @staticmethod
    def push_batch(heap_tuples, max_seen, sequence, max_lateness,
                   ts, keys, values):
        """Push a batch through the heap.

        ``heap_tuples`` is the current heap as a list of
        ``(ts, seq, key, value)`` tuples (heapq layout — already a valid
        binary heap under the same order the C side uses).  Returns
        ``(released_ts, released_keys, released_values, late_idx,
        late_lateness, new_heap_tuples, new_max_seen, new_sequence)``.
        """
        lib = _load()
        ts = _contiguous(ts, np.int64)
        keys = _contiguous(keys, np.int64)
        values = _contiguous(values, np.float64)
        n = ts.size
        hs0 = len(heap_tuples)
        cap = hs0 + n
        hts = np.empty(cap, dtype=np.int64)
        hseq = np.empty(cap, dtype=np.int64)
        hkey = np.empty(cap, dtype=np.int64)
        hval = np.empty(cap, dtype=np.float64)
        for i, (t, s, k, v) in enumerate(heap_tuples):
            hts[i], hseq[i], hkey[i], hval[i] = t, s, k, v
        heap_size = np.array([hs0], dtype=np.int64)
        state = np.array([max_seen, sequence], dtype=np.int64)
        out_ts = np.empty(cap, dtype=np.int64)
        out_keys = np.empty(cap, dtype=np.int64)
        out_values = np.empty(cap, dtype=np.float64)
        late_idx = np.empty(n, dtype=np.int64)
        late_lateness = np.empty(n, dtype=np.int64)
        late_count = np.array([0], dtype=np.int64)
        released = lib.repro_reorder_push_batch(
            _ptr(hts), _ptr(hseq), _ptr(hkey), _ptr(hval),
            _ptr(heap_size),
            _ptr(ts), _ptr(keys), _ptr(values), ctypes.c_int64(n),
            ctypes.c_int64(max_lateness), _ptr(state),
            _ptr(out_ts), _ptr(out_keys), _ptr(out_values),
            _ptr(late_idx), _ptr(late_lateness), _ptr(late_count),
        )
        hs = int(heap_size[0])
        new_heap = [
            (int(hts[i]), int(hseq[i]), int(hkey[i]), float(hval[i]))
            for i in range(hs)
        ]
        late = int(late_count[0])
        return (
            out_ts[:released], out_keys[:released], out_values[:released],
            late_idx[:late], late_lateness[:late],
            new_heap, int(state[0]), int(state[1]),
        )
