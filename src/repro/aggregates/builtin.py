"""Built-in aggregate functions.

Covers every aggregate the paper names: MIN, MAX, COUNT, SUM
(distributive), AVG, STDEV (algebraic), MEDIAN (holistic), plus a
generic QUANTILE as a second holistic example.

Empty-instance conventions (documented, consistent across all engines
and plans): MIN/MAX/AVG/STDEV/MEDIAN of an empty window instance is
NaN; SUM is 0.0; COUNT is 0.  On the constant-rate streams used by the
paper's evaluation no instance is ever empty.
"""

from __future__ import annotations

import numpy as np

from ..errors import UnsupportedAggregateError
from .base import AggregateFunction, Components, Taxonomy


def _as_result(value):
    """Return a float for 0-d results, the ndarray otherwise."""
    array = np.asarray(value)
    if array.ndim == 0:
        return float(array)
    return array


class Min(AggregateFunction):
    """MIN — distributive, merge-safe over overlapping partitions."""

    name = "min"
    taxonomy = Taxonomy.DISTRIBUTIVE

    @property
    def supports_overlapping_merge(self) -> bool:
        return True

    @property
    def component_ufuncs(self):
        return (np.minimum,)

    @property
    def identity_components(self) -> Components:
        return (np.inf,)

    def lift(self, values) -> Components:
        return (np.asarray(values, dtype=np.float64),)

    def finalize(self, components: Components):
        comp = np.asarray(components[0], dtype=np.float64)
        return _as_result(np.where(comp == np.inf, np.nan, comp))


class Max(AggregateFunction):
    """MAX — distributive, merge-safe over overlapping partitions."""

    name = "max"
    taxonomy = Taxonomy.DISTRIBUTIVE

    @property
    def supports_overlapping_merge(self) -> bool:
        return True

    @property
    def component_ufuncs(self):
        return (np.maximum,)

    @property
    def identity_components(self) -> Components:
        return (-np.inf,)

    def lift(self, values) -> Components:
        return (np.asarray(values, dtype=np.float64),)

    def finalize(self, components: Components):
        comp = np.asarray(components[0], dtype=np.float64)
        return _as_result(np.where(comp == -np.inf, np.nan, comp))


class Sum(AggregateFunction):
    """SUM — distributive; requires disjoint partitions (partitioned-by)."""

    name = "sum"
    taxonomy = Taxonomy.DISTRIBUTIVE

    @property
    def component_ufuncs(self):
        return (np.add,)

    @property
    def identity_components(self) -> Components:
        return (0.0,)

    def lift(self, values) -> Components:
        return (np.asarray(values, dtype=np.float64),)

    def finalize(self, components: Components):
        return _as_result(np.asarray(components[0], dtype=np.float64))


class Count(AggregateFunction):
    """COUNT — distributive with ``g = COUNT`` but ``f`` merged by SUM."""

    name = "count"
    taxonomy = Taxonomy.DISTRIBUTIVE

    @property
    def component_ufuncs(self):
        return (np.add,)

    @property
    def identity_components(self) -> Components:
        return (0.0,)

    def lift(self, values) -> Components:
        return (np.ones_like(np.asarray(values, dtype=np.float64)),)

    def finalize(self, components: Components):
        return _as_result(np.asarray(components[0], dtype=np.float64))


class Avg(AggregateFunction):
    """AVG — algebraic: ``g`` records (sum, count); ``h`` divides."""

    name = "avg"
    taxonomy = Taxonomy.ALGEBRAIC

    @property
    def component_ufuncs(self):
        return (np.add, np.add)

    @property
    def identity_components(self) -> Components:
        return (0.0, 0.0)

    def lift(self, values) -> Components:
        array = np.asarray(values, dtype=np.float64)
        return (array, np.ones_like(array))

    def finalize(self, components: Components):
        total = np.asarray(components[0], dtype=np.float64)
        count = np.asarray(components[1], dtype=np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            result = np.where(count > 0, total / np.where(count > 0, count, 1), np.nan)
        return _as_result(result)


class Stdev(AggregateFunction):
    """STDEV — algebraic: ``g`` records (sum, sum of squares, count).

    Sample standard deviation (``ddof = 1``, the SQL STDEV convention);
    instances with fewer than two events finalize to NaN.
    """

    name = "stdev"
    taxonomy = Taxonomy.ALGEBRAIC

    @property
    def component_ufuncs(self):
        return (np.add, np.add, np.add)

    @property
    def identity_components(self) -> Components:
        return (0.0, 0.0, 0.0)

    def lift(self, values) -> Components:
        array = np.asarray(values, dtype=np.float64)
        return (array, array * array, np.ones_like(array))

    def finalize(self, components: Components):
        total = np.asarray(components[0], dtype=np.float64)
        squares = np.asarray(components[1], dtype=np.float64)
        count = np.asarray(components[2], dtype=np.float64)
        safe = np.where(count > 1, count, 2.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            variance = (squares - total * total / safe) / (safe - 1.0)
            variance = np.maximum(variance, 0.0)  # guard FP cancellation
            result = np.where(count > 1, np.sqrt(variance), np.nan)
        return _as_result(result)


class _Holistic(AggregateFunction):
    """Shared plumbing for holistic aggregates (no merge path)."""

    taxonomy = Taxonomy.HOLISTIC

    @property
    def component_ufuncs(self):
        return ()

    @property
    def identity_components(self) -> Components:
        return ()

    def lift(self, values) -> Components:
        raise UnsupportedAggregateError(
            f"{self.name} is holistic and has no partial-aggregate form"
        )

    def finalize(self, components: Components):
        return float("nan")


def _segment_quantile(
    sorted_values: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    q: float,
) -> np.ndarray:
    """Per-segment quantile with linear interpolation (NumPy default).

    Each segment of ``sorted_values`` is sorted ascending, so the
    quantile is pure index arithmetic: position ``(L - 1) * q`` between
    the floor and ceil order statistics.
    """
    lengths = ends - starts
    position = (lengths - 1) * q
    lo = np.floor(position).astype(np.int64)
    hi = np.ceil(position).astype(np.int64)
    frac = position - lo
    low_vals = sorted_values[starts + lo]
    high_vals = sorted_values[starts + hi]
    result = low_vals + (high_vals - low_vals) * frac
    # NaN inputs sort to the end of each segment, where the index
    # arithmetic would silently skip them; np.quantile (and thus the
    # per-group compute path) propagates NaN instead.
    return np.where(np.isnan(sorted_values[ends - 1]), np.nan, result)


class Median(_Holistic):
    """MEDIAN — holistic; only computable from raw events."""

    name = "median"

    def compute(self, values) -> float:
        array = np.asarray(list(values), dtype=np.float64)
        if array.size == 0:
            return float("nan")
        return float(np.median(array))

    def segment_compute(self, sorted_values, starts, ends):
        return _segment_quantile(sorted_values, starts, ends, 0.5)

    @property
    def native_segment_kind(self):
        return ("quantile", 0.5)


class Quantile(_Holistic):
    """QUANTILE(q) — holistic; generalizes MEDIAN (``q = 0.5``)."""

    def __init__(self, q: float = 0.5):
        if not 0.0 <= q <= 1.0:
            raise UnsupportedAggregateError(f"quantile q must be in [0, 1], got {q}")
        self.q = q
        self.name = f"quantile({q:g})"

    def compute(self, values) -> float:
        array = np.asarray(list(values), dtype=np.float64)
        if array.size == 0:
            return float("nan")
        return float(np.quantile(array, self.q))

    def segment_compute(self, sorted_values, starts, ends):
        return _segment_quantile(sorted_values, starts, ends, self.q)

    @property
    def native_segment_kind(self):
        return ("quantile", self.q)
