"""Aggregate functions: taxonomy, partial-aggregate protocol, built-ins."""

from .base import AggregateFunction, Components, Taxonomy, empty_result_is_nan
from .builtin import Avg, Count, Max, Median, Min, Quantile, Stdev, Sum
from .extra import CountDistinct, GeometricMean, Range, SumOfSquares
from .registry import (
    AVG,
    COUNT_DISTINCT,
    GEOMEAN,
    RANGE,
    SUMSQ,
    COUNT,
    MAX,
    MEDIAN,
    MIN,
    STDEV,
    SUM,
    get_aggregate,
    known_aggregates,
    register_aggregate,
)

__all__ = [
    "AVG",
    "COUNT_DISTINCT",
    "CountDistinct",
    "GEOMEAN",
    "GeometricMean",
    "RANGE",
    "Range",
    "SUMSQ",
    "SumOfSquares",
    "AggregateFunction",
    "Avg",
    "COUNT",
    "Components",
    "Count",
    "MAX",
    "MEDIAN",
    "MIN",
    "Max",
    "Median",
    "Min",
    "Quantile",
    "STDEV",
    "SUM",
    "Stdev",
    "Sum",
    "Taxonomy",
    "empty_result_is_nan",
    "get_aggregate",
    "known_aggregates",
    "register_aggregate",
]
