"""Name-based lookup of aggregate functions.

The SQL front end and the benchmark harness refer to aggregates by
name; this registry maps names to singleton instances and allows
libraries built on top to register their own aggregates.
"""

from __future__ import annotations

from ..errors import UnsupportedAggregateError
from .base import AggregateFunction
from .builtin import Avg, Count, Max, Median, Min, Stdev, Sum
from .extra import CountDistinct, GeometricMean, Range, SumOfSquares

_REGISTRY: dict[str, AggregateFunction] = {}


def register_aggregate(aggregate: AggregateFunction, *aliases: str) -> None:
    """Register ``aggregate`` under its name and optional ``aliases``.

    Re-registering an existing name replaces it; names are
    case-insensitive.
    """
    for key in (aggregate.name, *aliases):
        _REGISTRY[key.lower()] = aggregate


def get_aggregate(name: str) -> AggregateFunction:
    """Look up an aggregate function by (case-insensitive) name."""
    try:
        return _REGISTRY[name.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnsupportedAggregateError(
            f"unknown aggregate function {name!r}; known: {known}"
        ) from None


def known_aggregates() -> tuple[str, ...]:
    """All registered aggregate names, sorted."""
    return tuple(sorted(_REGISTRY))


MIN = Min()
MAX = Max()
SUM = Sum()
COUNT = Count()
AVG = Avg()
STDEV = Stdev()
MEDIAN = Median()

register_aggregate(MIN)
register_aggregate(MAX)
register_aggregate(SUM)
register_aggregate(COUNT)
register_aggregate(AVG, "average", "mean")
register_aggregate(STDEV, "stddev", "std")
register_aggregate(MEDIAN)

RANGE = Range()
GEOMEAN = GeometricMean()
SUMSQ = SumOfSquares()
COUNT_DISTINCT = CountDistinct()

register_aggregate(RANGE)
register_aggregate(GEOMEAN, "geometric_mean")
register_aggregate(SUMSQ, "sum_of_squares")
register_aggregate(COUNT_DISTINCT, "countdistinct")
