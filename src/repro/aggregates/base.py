"""Aggregate-function protocol and the Gray et al. taxonomy.

Section III-A of the paper classifies aggregate functions as
*distributive*, *algebraic* or *holistic* (Gray et al., Data Cube) and
derives which window-coverage relation each may exploit:

* distributive/algebraic + ``partitioned_by`` — always sound (Thm 5);
* MIN/MAX + ``covered_by`` — sound because they stay distributive over
  overlapping partitions (Thm 6);
* holistic — no sub-aggregate sharing; every window reads raw events.

The computational protocol mirrors the classic ``(g, h)`` decomposition:
an aggregate is described by *partial components* (a tuple of numbers),
with four operations:

``lift``      raw value → partial components
``combine``   merge two partial component tuples (one NumPy ufunc per
              component, so the same code path is vectorized over whole
              instance arrays or applied to scalars)
``finalize``  partial components → final answer (the paper's ``h``)
``identity``  the neutral partial for an empty instance

The streaming engines move *partials* between windows and finalize only
at the plan's union/sink, which is what makes a user-facing window able
to simultaneously feed downstream windows in a rewritten plan.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from enum import Enum
from typing import Sequence

import numpy as np

from ..errors import UnsupportedAggregateError
from ..windows.coverage import CoverageSemantics
from .. import _kernels as kernels


class Taxonomy(str, Enum):
    """Gray et al.'s classification of aggregate functions."""

    DISTRIBUTIVE = "distributive"
    ALGEBRAIC = "algebraic"
    HOLISTIC = "holistic"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


Components = tuple  # tuple of scalars, or tuple of ndarrays (vectorized)


class AggregateFunction(ABC):
    """Base class for window aggregate functions.

    Subclasses define the partial-aggregate decomposition; this base
    class supplies generic combine/reduce helpers on top of the
    per-component ufuncs.
    """

    #: Lower-case canonical name (``"min"``, ``"avg"``, ...).
    name: str = ""

    #: Gray et al. classification.
    taxonomy: Taxonomy = Taxonomy.DISTRIBUTIVE

    # ------------------------------------------------------------------
    # Sharing capabilities
    # ------------------------------------------------------------------
    @property
    def supports_overlapping_merge(self) -> bool:
        """True when partials may be merged over *overlapping* inputs.

        Theorem 6 establishes this for MIN and MAX; it is what licenses
        the general ``covered_by`` semantics.
        """
        return False

    @property
    def mergeable(self) -> bool:
        """True when the aggregate can be computed from sub-aggregates
        at all (i.e. it is not holistic)."""
        return self.taxonomy is not Taxonomy.HOLISTIC

    @property
    def semantics(self) -> "CoverageSemantics | None":
        """Coverage semantics the optimizer may use for this aggregate.

        Per the paper's implementation note (footnote 2): ``covered_by``
        for MIN/MAX, ``partitioned_by`` for other distributive/algebraic
        functions, ``None`` for holistic ones (no sharing).
        """
        if not self.mergeable:
            return None
        if self.supports_overlapping_merge:
            return CoverageSemantics.COVERED_BY
        return CoverageSemantics.PARTITIONED_BY

    # ------------------------------------------------------------------
    # Partial-aggregate protocol
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def component_ufuncs(self) -> "tuple[np.ufunc, ...]":
        """One commutative/associative ufunc per partial component."""

    @property
    @abstractmethod
    def identity_components(self) -> Components:
        """Neutral partial (the value of an empty instance)."""

    @abstractmethod
    def lift(self, values: np.ndarray) -> Components:
        """Map raw values to per-value partial components.

        ``values`` may be a scalar or an ndarray; components come back
        with matching shape.

        Ownership contract: a component **may alias** the ``values``
        array itself (most lifts return it as their first component),
        so every consumer of lifted components — ``combine``,
        ``reduce_stack``, ``segment_reduce``, the streaming operators —
        must treat them as read-only.  No engine stage mutates lifted
        components or raw event arrays in place; stages that need a
        writable buffer (pane tables, holistic event retention) copy
        into state they own.  This is the same contract that lets the
        zero-copy data plane hand shared-memory ring views directly to
        the engines (see docs/performance.md).
        """

    @abstractmethod
    def finalize(self, components: Components):
        """Partial components → final aggregate value(s).

        Works element-wise on ndarray components; empty instances (the
        identity partial) finalize to the aggregate's empty result
        (NaN for MIN/MAX/AVG/STDEV/SUM, 0 for COUNT).
        """

    @property
    def num_components(self) -> int:
        return len(self.component_ufuncs)

    # ------------------------------------------------------------------
    # Generic helpers built on the protocol
    # ------------------------------------------------------------------
    def combine(self, left: Components, right: Components) -> Components:
        """Merge two partials component-wise (vectorized)."""
        self._require_mergeable("combine")
        return tuple(
            ufunc(a, b)
            for ufunc, a, b in zip(self.component_ufuncs, left, right)
        )

    def reduce_stack(self, stacks: Components, axis: int = 0) -> Components:
        """Reduce stacked partial components along ``axis``.

        Each element of ``stacks`` is an ndarray whose ``axis`` dimension
        enumerates the partials being merged (e.g. the ``M`` provider
        instances feeding one consumer instance).
        """
        self._require_mergeable("reduce")
        return tuple(
            ufunc.reduce(stack, axis=axis)
            for ufunc, stack in zip(self.component_ufuncs, stacks)
        )

    def segment_reduce(
        self,
        codes: np.ndarray,
        values: np.ndarray,
        num_segments: int,
        native: "bool | None" = None,
    ) -> Components:
        """Aggregate ``values`` grouped by integer ``codes``.

        Returns identity-filled component arrays of length
        ``num_segments`` with segment aggregates scattered in.  This is
        the raw-event aggregation primitive of the columnar engine; the
        sort makes it O(P log P) in the number of (event, instance)
        pairs P, uniformly across all plans.

        ``native`` routes the grouping through the compiled kernels
        (``repro._kernels``): ``True`` requests them explicitly (the
        ``columnar-panes-native`` path), ``None`` defers to the
        ``REPRO_KERNELS`` environment switch, ``False`` forces the pure
        path.  Either way the FP reduction itself runs in NumPy's
        ``reduceat`` over identical per-segment sequences, so the two
        paths are bit-identical.
        """
        if kernels.resolve(native) and kernels.supports_segment_reduce(self):
            return kernels.segment_reduce(self, codes, values, num_segments)
        components = self.lift(np.asarray(values))
        out = tuple(
            np.full(num_segments, ident, dtype=np.float64)
            for ident in self.identity_components
        )
        if codes.size == 0:
            return out
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        starts = np.concatenate(([0], boundaries))
        segment_ids = sorted_codes[starts]
        for ufunc, comp, slot in zip(self.component_ufuncs, components, out):
            reduced = ufunc.reduceat(np.asarray(comp)[order], starts)
            slot[segment_ids] = reduced
        return out

    def segment_compute(
        self,
        sorted_values: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
    ) -> "np.ndarray | None":
        """Vectorized per-segment direct evaluation, or ``None``.

        ``sorted_values`` holds every segment's values contiguously,
        *sorted ascending within each segment*; segment ``i`` occupies
        ``sorted_values[starts[i]:ends[i]]`` (never empty).  Holistic
        aggregates override this with a closed-form segmented kernel
        (e.g. MEDIAN via index arithmetic on the sorted segments) so the
        columnar engine can evaluate every (key, instance) group in one
        NumPy pass.  Returning ``None`` (the default) tells the caller
        to fall back to a per-segment :meth:`compute` loop.
        """
        return None

    @property
    def native_segment_kind(self) -> "tuple | None":
        """Closed form the compiled holistic kernel implements, if any.

        Holistic aggregates with a segmented closed form declare it
        here — ``("quantile", q)`` or ``("count_distinct",)`` — so the
        native engine path can evaluate segments entirely in C.  ``None``
        (the default) keeps the aggregate on the NumPy
        :meth:`segment_compute` / per-segment :meth:`compute` paths.
        """
        return None

    def compute(self, values: Sequence) -> float:
        """Directly aggregate a collection of raw values.

        This is the only computation path available to holistic
        aggregates; mergeable aggregates implement it via lift/finalize
        so tests can cross-check both paths.
        """
        array = np.asarray(list(values), dtype=np.float64)
        if array.size == 0:
            return self.finalize(self.identity_components)
        components = self.lift(array)
        reduced = tuple(
            ufunc.reduce(comp)
            for ufunc, comp in zip(self.component_ufuncs, components)
        )
        return float(self.finalize(reduced))

    def _require_mergeable(self, operation: str) -> None:
        if not self.mergeable:
            raise UnsupportedAggregateError(
                f"{self.name} is holistic: sub-aggregates cannot be "
                f"{operation}d; it must read raw events"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} ({self.taxonomy})>"


def empty_result_is_nan(value: float) -> bool:
    """Helper for tests: does ``value`` denote an empty-instance result?"""
    return isinstance(value, float) and math.isnan(value)
