"""Additional aggregate functions beyond the paper's list.

The paper's implementation note (Section III-A, footnote 2) fixes two
lists — covered-by for MIN/MAX, partitioned-by for COUNT/SUM/AVG — and
says "future work could expand these two lists with other aggregate
functions".  This module does exactly that:

* :class:`Range` (``max - min``) — algebraic, and *overlap-safe*: both
  of its components merge correctly over overlapping partitions, so it
  joins MIN/MAX on the covered-by list.  This is the interesting case
  the paper's taxonomy hints at: overlap-safety is a property of the
  partial components, not of distributivity per se.
* :class:`GeometricMean` — algebraic over (sum of logs, count);
  partitioned-by only.
* :class:`SumOfSquares` — distributive; partitioned-by only.
* :class:`CountDistinct` — holistic (exact distinct counting needs
  unbounded state), evaluated from raw events only.
"""

from __future__ import annotations

import numpy as np

from .base import AggregateFunction, Components, Taxonomy
from .builtin import _Holistic, _as_result


class Range(AggregateFunction):
    """RANGE = MAX − MIN — algebraic and safe over overlapping merges.

    ``g`` records (min, max); ``h`` subtracts.  Because both components
    are idempotent under re-aggregation of shared inputs, RANGE can use
    the general covered-by relation, extending the paper's footnote-2
    list beyond MIN/MAX.
    """

    name = "range"
    taxonomy = Taxonomy.ALGEBRAIC

    @property
    def supports_overlapping_merge(self) -> bool:
        return True

    @property
    def component_ufuncs(self):
        return (np.minimum, np.maximum)

    @property
    def identity_components(self) -> Components:
        return (np.inf, -np.inf)

    def lift(self, values) -> Components:
        # Both components may alias the input: lifted components are
        # read-only by contract (see AggregateFunction.lift), so the
        # defensive copy the original implementation made here bought
        # nothing but one allocation + memcpy per lifted chunk.
        array = np.asarray(values, dtype=np.float64)
        return (array, array)

    def finalize(self, components: Components):
        low = np.asarray(components[0], dtype=np.float64)
        high = np.asarray(components[1], dtype=np.float64)
        return _as_result(np.where(low == np.inf, np.nan, high - low))


class GeometricMean(AggregateFunction):
    """Geometric mean — algebraic over (sum of logs, count).

    Defined for positive values; any non-positive input poisons the
    instance to NaN (via ``log`` producing NaN/-inf), matching SQL's
    undefined-result convention.
    """

    name = "geomean"
    taxonomy = Taxonomy.ALGEBRAIC

    @property
    def component_ufuncs(self):
        return (np.add, np.add)

    @property
    def identity_components(self) -> Components:
        return (0.0, 0.0)

    def lift(self, values) -> Components:
        array = np.asarray(values, dtype=np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            logs = np.log(array)
        return (logs, np.ones_like(array))

    def finalize(self, components: Components):
        log_sum = np.asarray(components[0], dtype=np.float64)
        count = np.asarray(components[1], dtype=np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            result = np.where(
                count > 0,
                np.exp(log_sum / np.where(count > 0, count, 1)),
                np.nan,
            )
        return _as_result(result)


class SumOfSquares(AggregateFunction):
    """Σ v² — distributive; the building block of moment sketches."""

    name = "sumsq"
    taxonomy = Taxonomy.DISTRIBUTIVE

    @property
    def component_ufuncs(self):
        return (np.add,)

    @property
    def identity_components(self) -> Components:
        return (0.0,)

    def lift(self, values) -> Components:
        array = np.asarray(values, dtype=np.float64)
        return (array * array,)

    def finalize(self, components: Components):
        return _as_result(np.asarray(components[0], dtype=np.float64))


class CountDistinct(_Holistic):
    """Exact COUNT(DISTINCT v) — holistic: no constant-size partial."""

    name = "count_distinct"

    def compute(self, values) -> float:
        array = np.asarray(list(values), dtype=np.float64)
        if array.size == 0:
            return 0.0
        return float(np.unique(array).size)

    def segment_compute(self, sorted_values, starts, ends):
        # Within a sorted segment, distinct values = 1 + number of
        # positions where the value changes; a cumulative change count
        # turns that into subtraction of segment-boundary prefix sums.
        # NaNs sort to the end of each segment and compare unequal to
        # everything, so they are handled separately: np.unique (the
        # compute path) collapses all NaNs to a single distinct value.
        changes = np.concatenate(
            ([0], (sorted_values[1:] != sorted_values[:-1]).astype(np.int64))
        )
        # prefix[i] = change positions < i; changes strictly inside the
        # non-NaN part are positions in (start, nonnan_end).
        prefix = np.concatenate(([0], np.cumsum(changes)))
        nan_prefix = np.concatenate(
            ([0], np.cumsum(np.isnan(sorted_values).astype(np.int64)))
        )
        nans = nan_prefix[ends] - nan_prefix[starts]
        nonnan_ends = ends - nans
        has_values = nonnan_ends > starts
        distinct = np.where(
            has_values,
            1 + prefix[nonnan_ends] - prefix[np.minimum(starts + 1, nonnan_ends)],
            0,
        )
        return (distinct + (nans > 0)).astype(np.float64)

    @property
    def native_segment_kind(self):
        return ("count_distinct",)
