"""Slice-edge computation for general stream slicing.

Stream slicing (Pairs / Panes / Cutty / Scotty) chops the stream into
*slices*: maximal spans in which no window instance starts or ends.
For the hopping/tumbling windows handled here (``slide | range``),
instance starts and ends both fall on multiples of each window's
slide, so slice edges are the union of all slide multiples.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..errors import ExecutionError
from ..windows.window import Window


def slice_edges(windows: Iterable[Window], horizon: int) -> np.ndarray:
    """Sorted, unique slice boundaries covering ``[0, horizon]``.

    Always includes 0 and ``horizon``; a slice ``i`` spans
    ``[edges[i], edges[i+1})``.
    """
    window_list = list(windows)
    if not window_list:
        raise ExecutionError("cannot slice for an empty window set")
    if horizon <= 0:
        raise ExecutionError(f"horizon must be positive, got {horizon}")
    slides = sorted({w.slide for w in window_list})
    # Collapse slides that are multiples of a smaller slide: their edges
    # are a subset of the finer slide's edges.
    effective = [
        s for s in slides
        if not any(other != s and s % other == 0 for other in slides)
    ]
    parts = [np.arange(0, horizon + 1, s, dtype=np.int64) for s in effective]
    edges = np.unique(np.concatenate(parts + [np.asarray([0, horizon])]))
    return edges


def expected_edge_count(windows: Iterable[Window], horizon: int) -> int:
    """Edge count predicted by inclusion–exclusion over slide lattices.

    An independent check of :func:`slice_edges` for window sets with at
    most two distinct slides: edges are ``{0} ∪ multiples ∪ {horizon}``
    and ``|A ∪ B| = |A| + |B| − |A ∩ B|`` with the intersection lattice
    stepping by ``lcm(sA, sB)``.
    """
    slides = sorted({w.slide for w in windows})
    if len(slides) == 1:
        positive_marks = horizon // slides[0]
        if horizon % slides[0] == 0:
            positive_marks -= 1  # horizon counted separately below
    elif len(slides) == 2:
        a, b = slides
        lcm = math.lcm(a, b)
        positive_marks = horizon // a + horizon // b - horizon // lcm
        if horizon % a == 0 or horizon % b == 0:
            positive_marks -= 1  # horizon counted separately below
    else:
        raise ExecutionError("expected_edge_count supports <= 2 distinct slides")
    return positive_marks + 2  # plus 0 and horizon


def assign_slices(timestamps: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Slice index of each timestamp (``edges[i] <= ts < edges[i+1]``)."""
    return np.searchsorted(edges, timestamps, side="right") - 1


def window_slice_spans(
    window: Window, edges: np.ndarray, num_instances: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-instance slice ranges ``[lo, hi)`` for ``window``.

    Instance ``m`` spans slices ``lo[m] .. hi[m]-1``; both bounds index
    ``edges``-defined slices.  Instance boundaries always coincide with
    slice edges by construction.
    """
    starts = window.slide * np.arange(num_instances, dtype=np.int64)
    ends = starts + window.range
    lo = np.searchsorted(edges, starts, side="left")
    hi = np.searchsorted(edges, ends, side="left")
    if num_instances and (
        not np.array_equal(edges[lo], starts) or not np.array_equal(edges[hi], ends)
    ):
        raise ExecutionError(
            f"instance boundaries of {window} do not align with slice edges"
        )
    return lo, hi


def slices_per_instance(windows: Sequence[Window], horizon: int) -> dict:
    """Average number of slices each window's instances aggregate.

    This is the analytic cost driver of slicing-based execution; the
    benchmark reports use it to explain Scotty-vs-factor-window gaps.
    """
    edges = slice_edges(windows, horizon)
    out = {}
    for window in windows:
        n_inst = len(window.instance_range(horizon))
        if n_inst == 0:
            out[window] = 0.0
            continue
        lo, hi = window_slice_spans(window, edges, n_inst)
        out[window] = float(np.mean(hi - lo))
    return out
