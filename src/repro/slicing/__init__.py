"""General stream slicing (Scotty-style) baseline."""

from .edges import (
    assign_slices,
    expected_edge_count,
    slice_edges,
    slices_per_instance,
    window_slice_spans,
)
from .slicer import (
    SliceStore,
    SlicedExecutionResult,
    assemble_window,
    build_slice_store,
    execute_sliced,
)

__all__ = [
    "SliceStore",
    "SlicedExecutionResult",
    "assemble_window",
    "assign_slices",
    "build_slice_store",
    "execute_sliced",
    "expected_edge_count",
    "slice_edges",
    "slices_per_instance",
    "window_slice_spans",
]
