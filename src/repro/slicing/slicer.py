"""Scotty-style general stream slicing — the paper's baseline (§V-F).

Eager slicing executes a multi-window aggregate in two phases:

1. **Slice pass** — one pass over raw events computes a partial
   aggregate per (key, slice); every event is touched exactly once.
2. **Assembly pass** — each window instance merges the partials of the
   slices it spans.

Slices are disjoint by construction, so assembly is sound for every
distributive/algebraic aggregate (no covered-by restriction) — matching
Scotty's generality.  What slicing does *not* do is share
sub-aggregates *between* windows: every window assembles from the
common slice store, paying ``slices-per-instance`` merges per instance
even when another window's results could be reused.  That difference
is exactly what Figures 13 and 22 measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..aggregates.base import AggregateFunction
from ..errors import ExecutionError
from ..windows.window import Window, WindowSet
from ..engine.events import EventBatch
from ..engine.stats import ExecutionStats
from .edges import assign_slices, slice_edges, window_slice_spans


@dataclass
class SliceStore:
    """Per-(key, slice) partial aggregates plus the slice geometry."""

    edges: np.ndarray
    components: tuple[np.ndarray, ...]  # each (num_keys, num_slices)
    num_keys: int

    @property
    def num_slices(self) -> int:
        return len(self.edges) - 1


def build_slice_store(
    batch: EventBatch,
    windows: Iterable[Window],
    aggregate: AggregateFunction,
    stats: "ExecutionStats | None" = None,
) -> SliceStore:
    """Phase 1: aggregate raw events into slices (one touch per event)."""
    if not aggregate.mergeable:
        raise ExecutionError(
            f"slicing cannot pre-aggregate holistic {aggregate.name}"
        )
    edges = slice_edges(windows, batch.horizon)
    num_slices = len(edges) - 1
    slice_ids = assign_slices(batch.timestamps, edges)
    codes = batch.keys * num_slices + slice_ids
    if stats is not None:
        stats.record_pairs(Window(1, 1, name="slices"), batch.num_events)
    flat = aggregate.segment_reduce(
        codes, batch.values, batch.num_keys * num_slices
    )
    components = tuple(
        c.reshape(batch.num_keys, num_slices) for c in flat
    )
    return SliceStore(edges=edges, components=components, num_keys=batch.num_keys)


def assemble_window(
    store: SliceStore,
    window: Window,
    aggregate: AggregateFunction,
    horizon: int,
    stats: "ExecutionStats | None" = None,
) -> np.ndarray:
    """Phase 2: merge each instance's slice partials; finalize.

    Returns finalized results of shape ``(num_keys, num_instances)``.
    Work: ``num_keys * Σ_m (slices in instance m)`` pair touches.
    """
    num_instances = len(window.instance_range(horizon))
    if num_instances == 0:
        return np.full((store.num_keys, 0), np.nan, dtype=np.float64)
    lo, hi = window_slice_spans(window, store.edges, num_instances)
    counts = hi - lo
    max_count = int(counts.max())
    offsets = np.arange(max_count, dtype=np.int64)[None, :]
    index = lo[:, None] + offsets  # (num_instances, max_count)
    mask = offsets < counts[:, None]
    index = np.where(mask, index, 0)  # clipped; masked below
    if stats is not None:
        stats.record_pairs(window, store.num_keys * int(counts.sum()))
    merged = []
    for ufunc, comp, ident in zip(
        aggregate.component_ufuncs,
        store.components,
        aggregate.identity_components,
    ):
        gathered = comp[:, index]  # (num_keys, num_instances, max_count)
        gathered = np.where(mask[None, :, :], gathered, ident)
        merged.append(ufunc.reduce(gathered, axis=2))
    return np.asarray(aggregate.finalize(tuple(merged)), dtype=np.float64)


@dataclass
class SlicedExecutionResult:
    """Results and statistics of a sliced multi-window execution."""

    results: dict[Window, np.ndarray]
    stats: ExecutionStats
    num_slices: int

    @property
    def throughput(self) -> float:
        return self.stats.throughput


def execute_sliced(
    windows: "WindowSet | Iterable[Window]",
    aggregate: AggregateFunction,
    batch: EventBatch,
) -> SlicedExecutionResult:
    """Execute the whole window set with eager stream slicing."""
    window_list = list(windows)
    stats = ExecutionStats(events=batch.num_events)
    started = time.perf_counter()
    store = build_slice_store(batch, window_list, aggregate, stats)
    results = {
        window: assemble_window(store, window, aggregate, batch.horizon, stats)
        for window in window_list
    }
    stats.wall_seconds = time.perf_counter() - started
    return SlicedExecutionResult(
        results=results, stats=stats, num_slices=store.num_slices
    )
