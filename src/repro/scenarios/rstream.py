"""The ``.rstream`` capture format: a recorded run as a columnar file.

Recording a scenario run (``record=`` on the runner, ``--record`` on
the CLI) captures everything replay needs to reproduce the run
bit-identically:

* the **exact arrival stream** — the compiled event columns *after*
  the out-of-order profile reordered them, laid out column-by-column
  in :data:`~repro.engine.events.EVENT_COLUMN_DTYPES` order (raw
  little-endian array bytes, 24 B/event — compact enough to commit a
  capture as a test fixture);
* the **op schedule** — every register/deregister/rebalance, pinned
  to the arrival index it fired at;
* the **runtime shape** the run used, and the **outcome** it produced
  (result digest + logical counters) so a replay can assert identity
  without re-deriving anything.

On disk (the :mod:`~repro.runtime.checkpoint` framing, JSON header
instead of pickle — a capture is shareable data, not trusted code)::

    magic (6) | version (u16 LE) | sha256(body) (32) | body
    body = header_len (u32 LE) | header (UTF-8 JSON) | column bytes

Writes are atomic (temp file + ``os.replace``); reads verify magic,
version, checksum, column dtypes, and byte counts and raise
:class:`~repro.errors.ExecutionError` on any mismatch — a torn or
tampered capture never partial-replays.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..engine.events import EVENT_COLUMN_DTYPES
from ..errors import ExecutionError

__all__ = [
    "RSTREAM_MAGIC",
    "RSTREAM_VERSION",
    "StreamCapture",
    "read_rstream",
    "write_rstream",
]

#: File magic — identifies a factor-windows stream capture.
RSTREAM_MAGIC = b"RSTRM\x00"

#: Format version; bumped on any incompatible layout change.
RSTREAM_VERSION = 1

_VERSION_WORD = struct.Struct("<H")
_HEADER_LEN = struct.Struct("<I")
_DIGEST_BYTES = 32
_PREFIX_BYTES = len(RSTREAM_MAGIC) + _VERSION_WORD.size + _DIGEST_BYTES

#: The canonical column layout, serialized into every header so a
#: reader can refuse a capture whose schema it does not understand.
_COLUMNS = tuple(
    (name, dtype.newbyteorder("<").str) for name, dtype in EVENT_COLUMN_DTYPES
)


@dataclass
class StreamCapture:
    """One recorded run, in memory.

    ``ops`` is the arrival-pinned op schedule:
    ``(index, kind, payload)`` tuples where ``kind`` is ``register``
    (payload: a query-spec mapping), ``deregister`` (payload: the
    query name), or ``rebalance`` (payload: ``None``); ops at index
    ``i`` apply before the ``i``-th event is pushed.  ``runtime`` is
    the runtime-spec mapping of the recorded run; ``outcome`` its
    recorded digest and logical counters; ``meta`` anything else the
    recorder wants to keep (scenario name, description).
    """

    timestamps: np.ndarray
    keys: np.ndarray
    values: np.ndarray
    horizon: int
    num_keys: int
    max_lateness: int
    ops: "tuple[tuple[int, str, object], ...]" = ()
    runtime: dict = field(default_factory=dict)
    outcome: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    @property
    def num_events(self) -> int:
        return int(self.timestamps.size)


def write_rstream(capture: StreamCapture, path: "str | Path") -> Path:
    """Serialize ``capture`` to ``path`` atomically; returns the path."""
    path = Path(path)
    columns = [
        np.ascontiguousarray(column, dtype=np.dtype(dtype_str))
        for column, (_, dtype_str) in zip(
            (capture.timestamps, capture.keys, capture.values), _COLUMNS
        )
    ]
    lengths = {column.size for column in columns}
    if len(lengths) != 1:
        raise ExecutionError(
            f"capture columns disagree on length: {sorted(lengths)}"
        )
    header = {
        "num_events": capture.num_events,
        "num_keys": int(capture.num_keys),
        "horizon": int(capture.horizon),
        "max_lateness": int(capture.max_lateness),
        "columns": [list(column) for column in _COLUMNS],
        "ops": [
            [int(index), str(kind), payload]
            for index, kind, payload in capture.ops
        ],
        "runtime": capture.runtime,
        "outcome": capture.outcome,
        "meta": capture.meta,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    body = _HEADER_LEN.pack(len(header_bytes)) + header_bytes
    body += b"".join(column.tobytes() for column in columns)
    blob = (
        RSTREAM_MAGIC
        + _VERSION_WORD.pack(RSTREAM_VERSION)
        + hashlib.sha256(body).digest()
        + body
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_rstream(path: "str | Path") -> StreamCapture:
    """Load and verify one capture.

    Raises :class:`~repro.errors.ExecutionError` on a missing file, a
    foreign or truncated header, a version or schema mismatch, or a
    checksum failure — a capture either replays exactly or not at all.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise ExecutionError(f"cannot read capture {path}: {exc}") from exc
    if len(blob) < _PREFIX_BYTES or not blob.startswith(RSTREAM_MAGIC):
        raise ExecutionError(
            f"{path} is not a factor-windows stream capture"
        )
    offset = len(RSTREAM_MAGIC)
    (version,) = _VERSION_WORD.unpack_from(blob, offset)
    if version != RSTREAM_VERSION:
        raise ExecutionError(
            f"{path}: capture format v{version} is not supported "
            f"(this build reads v{RSTREAM_VERSION})"
        )
    offset += _VERSION_WORD.size
    digest = blob[offset : offset + _DIGEST_BYTES]
    body = blob[offset + _DIGEST_BYTES :]
    if hashlib.sha256(body).digest() != digest:
        raise ExecutionError(
            f"{path}: checksum mismatch — capture is corrupt or torn"
        )
    if len(body) < _HEADER_LEN.size:
        raise ExecutionError(f"{path}: capture body is truncated")
    (header_len,) = _HEADER_LEN.unpack_from(body, 0)
    header_end = _HEADER_LEN.size + header_len
    if len(body) < header_end:
        raise ExecutionError(f"{path}: capture header is truncated")
    try:
        header = json.loads(body[_HEADER_LEN.size : header_end])
    except ValueError as exc:
        raise ExecutionError(
            f"{path}: capture header is not valid JSON: {exc}"
        ) from exc
    columns_declared = tuple(
        (name, dtype_str) for name, dtype_str in header.get("columns", ())
    )
    if columns_declared != _COLUMNS:
        raise ExecutionError(
            f"{path}: capture column schema {columns_declared!r} does "
            f"not match this build's {_COLUMNS!r}"
        )
    num_events = int(header["num_events"])
    payload = body[header_end:]
    expected = sum(
        num_events * np.dtype(dtype_str).itemsize for _, dtype_str in _COLUMNS
    )
    if len(payload) != expected:
        raise ExecutionError(
            f"{path}: capture carries {len(payload)} column bytes, "
            f"expected {expected} for {num_events} events"
        )
    arrays = []
    cursor = 0
    for _, dtype_str in _COLUMNS:
        dtype = np.dtype(dtype_str)
        span = num_events * dtype.itemsize
        arrays.append(
            np.frombuffer(payload[cursor : cursor + span], dtype=dtype).copy()
        )
        cursor += span
    ops = tuple(
        (int(index), str(kind), payload_item)
        for index, kind, payload_item in header.get("ops", ())
    )
    return StreamCapture(
        timestamps=arrays[0],
        keys=arrays[1],
        values=arrays[2],
        horizon=int(header["horizon"]),
        num_keys=int(header["num_keys"]),
        max_lateness=int(header["max_lateness"]),
        ops=ops,
        runtime=dict(header.get("runtime") or {}),
        outcome=dict(header.get("outcome") or {}),
        meta=dict(header.get("meta") or {}),
    )
