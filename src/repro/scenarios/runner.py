"""Compile and run scenarios; record and replay captures.

:func:`compile_scenario` turns a declarative :class:`Scenario` into a
:class:`CompiledStream` — the exact arrival-order event columns (the
seeded generator's output, reordered by the out-of-order profile) plus
an **op schedule** pinning every register/deregister/rebalance to the
arrival index it fires at.  Compilation is a pure function of the
scenario, so two compiles of the same file are bit-identical — which
is what lets one committed ``expect.digest`` hold everywhere.

:class:`ScenarioRunner` executes a compiled stream on any session
shape.  The runtime section is only a *default*: shards, backend, and
ingest mode can be overridden per run, and by invariants 10/11 the
report's digest must not move.  Chaos schedules arm on the worker
backends and recovery must keep the digest fixed too (invariant 12) —
the conformance tier (``tests/scenarios/``) holds all of this.

Record/replay: ``record=`` writes the arrival stream + op schedule +
outcome to a ``.rstream`` capture (:mod:`repro.scenarios.rstream`);
:meth:`ScenarioRunner.replay` re-feeds a capture bit-identically, so
any captured run — including a chaos run that killed workers
mid-stream — is a permanent regression fixture.
"""

from __future__ import annotations

import hashlib
import struct
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from ..aggregates.registry import get_aggregate
from ..core.multiquery import Query
from ..errors import ExecutionError
from ..runtime import QuerySession, ShardedSession
from ..workloads.domains import domain_stream
from ..workloads.rng import seeded_rng
from .rstream import StreamCapture, read_rstream, write_rstream
from .schema import (
    QuerySpec,
    RatePhase,
    RuntimeSpec,
    Scenario,
    StreamSpec,
    ValueSpec,
    _build,
    _spec_dict,
    load_scenario,
)

__all__ = [
    "CompiledStream",
    "ScenarioReport",
    "ScenarioRunner",
    "compile_scenario",
    "replay_capture",
    "results_digest",
    "run_scenario",
]

#: Op application order at one arrival index: registrations first (a
#: query joining "at" an event sees that event), then departures,
#: then layout changes.
_OP_PRIORITY = {"register": 0, "deregister": 1, "rebalance": 2}


@dataclass(frozen=True)
class CompiledStream:
    """A scenario lowered to exactly what a session ingests.

    ``timestamps/keys/values`` are in **arrival order** (the
    out-of-order profile already applied); ``ops`` is the sorted
    ``(index, kind, payload)`` schedule — ops at index ``i`` apply
    before the ``i``-th arrival is pushed (``i == num_events`` applies
    after the last push, before finish).  ``max_lateness`` is the
    reorder bound the session needs to absorb the disorder without
    drops.
    """

    timestamps: np.ndarray
    keys: np.ndarray
    values: np.ndarray
    horizon: int
    num_keys: int
    max_lateness: int
    ops: "tuple[tuple[int, str, object], ...]"

    @property
    def num_events(self) -> int:
        return int(self.timestamps.size)


def _sample_values(
    rng: np.random.Generator, spec: ValueSpec, count: int
) -> np.ndarray:
    if spec.distribution == "gaussian":
        values = rng.normal(spec.mean, spec.stddev, count)
    elif spec.distribution == "lognormal":
        values = rng.lognormal(spec.mean, spec.stddev, count) * spec.scale
    elif spec.distribution == "exponential":
        values = rng.exponential(spec.scale, count)
    else:  # uniform
        values = rng.uniform(spec.low, spec.high, count)
    return np.round(values) if spec.round else values


def _zipf_weights(num_keys: int, s: float) -> np.ndarray:
    weights = 1.0 / np.arange(1, num_keys + 1, dtype=np.float64) ** s
    return weights / weights.sum()


def _build_synthetic(spec: StreamSpec):
    """The generic synthetic profile: phased rate, per-phase skew,
    configurable value distribution — all from one seeded generator."""
    rng = seeded_rng(spec.seed)
    num_events, num_keys = spec.events, spec.keys
    base_skew = 0.0 if spec.skew is None else float(spec.skew)
    if spec.rate_schedule is None:
        phases = (RatePhase(until=1.0, rate=spec.rate or 1),)
    else:
        phases = spec.rate_schedule
    bounds = [0] + [round(p.until * num_events) for p in phases]
    bounds[-1] = num_events
    rank_to_key = rng.permutation(num_keys).astype(np.int64)
    ts_parts, key_parts = [], []
    tick = 0
    for phase, lo, hi in zip(phases, bounds[:-1], bounds[1:]):
        count = hi - lo
        if count <= 0:
            continue
        part = tick + np.arange(count, dtype=np.int64) // phase.rate
        tick = int(part[-1]) + 1
        ts_parts.append(part)
        skew = base_skew if phase.skew is None else phase.skew
        weights = _zipf_weights(num_keys, skew)
        key_parts.append(
            rank_to_key[rng.choice(num_keys, size=count, p=weights)]
        )
    timestamps = np.concatenate(ts_parts)
    keys = np.concatenate(key_parts)
    values = _sample_values(rng, spec.values or ValueSpec(), num_events)
    return timestamps, keys, values, int(timestamps[-1]) + 1


def _arrival_index(arrival_ts: np.ndarray, watermark: int) -> int:
    """The first arrival index whose event timestamp reaches
    ``watermark`` (the stream may be arrival-scrambled, so this is a
    scan, not a bisect); past-the-end when none does."""
    mask = arrival_ts >= watermark
    return int(np.argmax(mask)) if mask.any() else int(arrival_ts.size)


def compile_scenario(scenario: Scenario) -> CompiledStream:
    """Lower a scenario to its exact arrival stream + op schedule."""
    spec = scenario.stream
    if spec.profile == "synthetic":
        timestamps, keys, values, horizon = _build_synthetic(spec)
    else:
        batch = domain_stream(
            spec.profile, spec.events, spec.keys, spec.seed
        )
        timestamps, keys, values = batch.timestamps, batch.keys, batch.values
        horizon = batch.horizon
    disorder = spec.out_of_order.lateness if spec.out_of_order else 0
    if disorder > 0:
        # The scramble_batch displacement model, columnar: each event
        # may arrive up to `lateness` positions after its slot, which
        # a ReorderBuffer(lateness) absorbs without drops.
        jitter_rng = seeded_rng(spec.out_of_order.seed)
        jitter = jitter_rng.integers(0, disorder + 1, timestamps.size)
        order = np.argsort(timestamps + jitter, kind="stable")
        timestamps = timestamps[order]
        keys = keys[order]
        values = values[order]
    lateness = (
        scenario.runtime.lateness
        if scenario.runtime.lateness is not None
        else disorder
    )
    ops = []
    for query in scenario.workload.queries:
        ops.append(
            (
                _arrival_index(timestamps, query.register_at),
                "register",
                _spec_dict(query),
            )
        )
        if query.deregister_at is not None:
            ops.append(
                (
                    _arrival_index(timestamps, query.deregister_at),
                    "deregister",
                    query.name,
                )
            )
    every = scenario.runtime.rebalance_every
    if every:
        for index in range(every, int(timestamps.size), every):
            ops.append((index, "rebalance", None))
    ops.sort(key=lambda op: (op[0], _OP_PRIORITY[op[1]]))
    return CompiledStream(
        timestamps=timestamps,
        keys=keys,
        values=values,
        horizon=horizon,
        num_keys=spec.keys,
        max_lateness=lateness,
        ops=tuple(ops),
    )


def results_digest(results) -> str:
    """A canonical sha256 over one run's full result set.

    Serialization is order-independent input, fixed-order output:
    queries sorted by name, windows by (range, slide), each entry
    contributing its identity, emitted instance range, and the raw
    float64 result bytes — so two runs digest equal iff their results
    are bit-identical.
    """
    digest = hashlib.sha256()
    for name in sorted(results):
        by_window = results[name]
        for window in sorted(
            by_window, key=lambda w: (w.range, w.slide)
        ):
            emitted = by_window[window]
            digest.update(name.encode("utf-8"))
            digest.update(
                struct.pack(
                    "<qqqq",
                    window.range,
                    window.slide,
                    emitted.start_instance,
                    emitted.frontier,
                )
            )
            digest.update(
                np.ascontiguousarray(
                    emitted.values, dtype=np.float64
                ).tobytes()
            )
    return digest.hexdigest()


@dataclass
class ScenarioReport:
    """The structured outcome of one scenario (or capture) run."""

    name: str
    backend: str
    shards: int
    async_ingest: bool
    events: int
    accepted: int
    late_dropped: int
    wall_seconds: float
    throughput: float
    digest: str
    total_pairs: int
    total_physical: int
    slots_moved: int
    worker_recoveries: int
    faults_fired: int
    queries: "dict[str, int]"
    results: dict = field(repr=False, default_factory=dict)
    stats: object = field(repr=False, default=None)

    def outcome(self) -> dict:
        """The logical outcome a capture records and a replay must
        reproduce: the digest plus every machine-independent counter
        (wall-clock and recovery/fault counts are *run* facts, not
        stream facts, so they stay out)."""
        return {
            "digest": self.digest,
            "events": self.events,
            "accepted": self.accepted,
            "late_dropped": self.late_dropped,
            "total_pairs": self.total_pairs,
            "queries": dict(self.queries),
        }

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "backend": self.backend,
            "shards": self.shards,
            "async_ingest": self.async_ingest,
            "wall_seconds": self.wall_seconds,
            "throughput": self.throughput,
            "total_physical": self.total_physical,
            "slots_moved": self.slots_moved,
            "worker_recoveries": self.worker_recoveries,
            "faults_fired": self.faults_fired,
            **self.outcome(),
        }

    def verify(self, expect, where: str = "scenario") -> None:
        """Check this run against an :class:`ExpectSpec`; raises one
        :class:`~repro.errors.ExecutionError` naming every mismatch."""
        problems = []
        checks = (
            ("digest", expect.digest, self.digest),
            ("accepted", expect.accepted, self.accepted),
            ("late_dropped", expect.late_dropped, self.late_dropped),
            ("total_pairs", expect.total_pairs, self.total_pairs),
        )
        for label, expected, actual in checks:
            if expected is not None and actual != expected:
                problems.append(
                    f"{label}: expected {expected!r}, got {actual!r}"
                )
        if expect.min_throughput is not None and (
            self.throughput < expect.min_throughput
        ):
            problems.append(
                f"throughput {self.throughput:,.0f} ev/s below the "
                f"floor {expect.min_throughput:,.0f}"
            )
        for name, instances in (expect.queries or {}).items():
            actual = self.queries.get(name)
            if actual != instances:
                problems.append(
                    f"queries[{name!r}]: expected {instances} emitted "
                    f"instance(s), got {actual}"
                )
        if problems:
            raise ExecutionError(
                f"{where} {self.name!r} failed verification on "
                f"{self.backend}/x{self.shards}"
                f"{'/async' if self.async_ingest else ''}: "
                + "; ".join(problems)
            )


def _query_from_payload(payload: dict) -> "tuple[Query, str]":
    spec = (
        payload
        if isinstance(payload, QuerySpec)
        else _build(QuerySpec, dict(payload), "query")
    )
    query = Query(
        name=spec.name,
        windows=spec.window_set(),
        aggregate=get_aggregate(spec.aggregate),
    )
    return query, spec.scope


class ScenarioRunner:
    """Executes compiled streams; the one feed loop record and replay
    share, so a capture replays the recorded run instruction by
    instruction."""

    def __init__(self, scenario: "Scenario | str | Path | dict"):
        self.scenario = (
            scenario
            if isinstance(scenario, Scenario)
            else load_scenario(scenario)
        )
        self._compiled: "CompiledStream | None" = None

    @property
    def compiled(self) -> CompiledStream:
        if self._compiled is None:
            self._compiled = compile_scenario(self.scenario)
        return self._compiled

    def runtime_config(self, **overrides) -> RuntimeSpec:
        """The scenario's runtime section with per-run overrides
        applied (``None`` overrides are ignored)."""
        chosen = {
            key: value for key, value in overrides.items() if value is not None
        }
        return replace(self.scenario.runtime, **chosen)

    def run(
        self,
        backend: "str | None" = None,
        shards: "int | None" = None,
        async_ingest: "bool | None" = None,
        record: "str | Path | None" = None,
        verify: bool = False,
    ) -> ScenarioReport:
        """One full run; with ``record=`` the arrival stream, op
        schedule, and outcome are captured to a ``.rstream`` file;
        with ``verify=True`` the report is checked against the
        scenario's ``expect`` section before returning."""
        runtime = self.runtime_config(
            backend=backend, shards=shards, async_ingest=async_ingest
        )
        compiled = self.compiled
        fault_plan = None
        if self.scenario.chaos is not None and runtime.backend != "serial":
            fault_plan = self.scenario.chaos.build_plan()
        report = _execute(
            self.scenario.name, compiled, runtime, fault_plan
        )
        if record is not None:
            write_rstream(
                StreamCapture(
                    timestamps=compiled.timestamps,
                    keys=compiled.keys,
                    values=compiled.values,
                    horizon=compiled.horizon,
                    num_keys=compiled.num_keys,
                    max_lateness=compiled.max_lateness,
                    ops=compiled.ops,
                    runtime=_spec_dict(runtime),
                    outcome=report.outcome(),
                    meta={
                        "scenario": self.scenario.name,
                        "description": self.scenario.description,
                        "chaos": self.scenario.chaos is not None,
                    },
                ),
                record,
            )
        if verify:
            report.verify(self.scenario.expect)
        return report

    @staticmethod
    def replay(
        capture: "StreamCapture | str | Path",
        backend: "str | None" = None,
        shards: "int | None" = None,
        async_ingest: "bool | None" = None,
        verify: bool = True,
    ) -> ScenarioReport:
        """Re-feed a capture bit-identically.

        The recorded arrival stream and op schedule replay against the
        recorded runtime shape (faults are *not* re-injected — the
        capture already contains the stream the faulted run ingested,
        and recovery is observationally free, so the outcome must
        match anyway).  With ``verify=True`` (default) the replay's
        digest and every logical counter are checked against the
        recorded outcome.
        """
        if not isinstance(capture, StreamCapture):
            capture = read_rstream(capture)
        runtime = _build(
            RuntimeSpec, dict(capture.runtime), "runtime"
        )
        chosen = {
            key: value
            for key, value in (
                ("backend", backend),
                ("shards", shards),
                ("async_ingest", async_ingest),
            )
            if value is not None
        }
        runtime = replace(runtime, **chosen)
        compiled = CompiledStream(
            timestamps=capture.timestamps,
            keys=capture.keys,
            values=capture.values,
            horizon=capture.horizon,
            num_keys=capture.num_keys,
            max_lateness=capture.max_lateness,
            ops=capture.ops,
        )
        name = str(capture.meta.get("scenario") or "capture")
        report = _execute(name, compiled, runtime, fault_plan=None)
        if verify and capture.outcome:
            recorded = capture.outcome
            mismatches = [
                f"{key}: recorded {recorded[key]!r}, replayed "
                f"{value!r}"
                for key, value in report.outcome().items()
                if key in recorded and recorded[key] != value
            ]
            if mismatches:
                raise ExecutionError(
                    f"replay of {name!r} diverged from its recorded "
                    "outcome: " + "; ".join(mismatches)
                )
        return report


def _execute(
    name: str,
    compiled: CompiledStream,
    runtime: RuntimeSpec,
    fault_plan,
) -> ScenarioReport:
    num_events = compiled.num_events
    session_kwargs: dict = {}
    if runtime.chunk_ticks is not None:
        session_kwargs["chunk_ticks"] = runtime.chunk_ticks
    if runtime.shards > 1:
        if runtime.slots is not None:
            session_kwargs["num_slots"] = runtime.slots
        if fault_plan is not None:
            session_kwargs["fault_plan"] = fault_plan
        workers = runtime.backend != "serial"
        session = ShardedSession(
            num_keys=compiled.num_keys,
            num_shards=runtime.shards,
            backend=runtime.backend,
            max_lateness=compiled.max_lateness,
            async_ingest=runtime.async_ingest,
            worker_recovery=runtime.worker_recovery and workers,
            hysteresis=None,
            **session_kwargs,
        )
    else:
        session = QuerySession(
            num_keys=compiled.num_keys,
            max_lateness=compiled.max_lateness,
            async_ingest=runtime.async_ingest,
            hysteresis=None,
            **session_kwargs,
        )
    rows = np.column_stack(
        (
            compiled.timestamps.astype(np.float64),
            compiled.keys.astype(np.float64),
            compiled.values.astype(np.float64),
        )
    )
    moved = 0
    started = time.perf_counter()
    try:
        cursor = 0
        schedule = list(compiled.ops) + [(num_events, None, None)]
        for index, kind, payload in schedule:
            index = min(max(index, 0), num_events)
            if index > cursor:
                _feed(session, compiled, rows, cursor, index)
                cursor = index
            if kind == "register":
                query, scope = _query_from_payload(payload)
                session.register(query, scope=scope)
            elif kind == "deregister":
                session.deregister(str(payload))
            elif kind == "rebalance":
                if runtime.shards > 1:
                    moved += session.rebalance()
        if cursor < num_events:
            _feed(session, compiled, rows, cursor, num_events)
        results = session.finish(horizon=compiled.horizon)
        wall = time.perf_counter() - started
        reorder = session.reorder_stats
        stats = session.stats()
        recoveries = getattr(session, "worker_recoveries", 0)
    except BaseException:
        session.close()
        raise
    session.close()
    queries = {
        query_name: sum(
            emitted.frontier - emitted.start_instance
            for emitted in by_window.values()
        )
        for query_name, by_window in results.items()
    }
    return ScenarioReport(
        name=name,
        backend=runtime.backend if runtime.shards > 1 else "serial",
        shards=runtime.shards,
        async_ingest=runtime.async_ingest,
        events=num_events,
        accepted=reorder.accepted,
        late_dropped=reorder.late_dropped,
        wall_seconds=wall,
        throughput=num_events / wall if wall > 0 else float("inf"),
        digest=results_digest(results),
        total_pairs=stats.total_pairs,
        total_physical=stats.total_physical,
        slots_moved=moved,
        worker_recoveries=recoveries,
        faults_fired=len(fault_plan.fired) if fault_plan is not None else 0,
        queries=queries,
        results=results,
        stats=stats,
    )


def _feed(session, compiled, rows, lo: int, hi: int) -> None:
    """Push arrivals ``[lo, hi)``: vectorized for a sync sharded
    session, per-event otherwise (results are identical either way —
    that equivalence is itself a blessed contract)."""
    if isinstance(session, ShardedSession) and session.ingest_stats is None:
        session.push_many(rows[lo:hi])
        return
    timestamps, keys, values = (
        compiled.timestamps,
        compiled.keys,
        compiled.values,
    )
    for i in range(lo, hi):
        session.push(int(timestamps[i]), int(keys[i]), float(values[i]))


def run_scenario(
    scenario: "Scenario | str | Path | dict",
    backend: "str | None" = None,
    shards: "int | None" = None,
    async_ingest: "bool | None" = None,
    record: "str | Path | None" = None,
    verify: bool = False,
) -> ScenarioReport:
    """Load, compile, and run one scenario (the one-call form)."""
    return ScenarioRunner(scenario).run(
        backend=backend,
        shards=shards,
        async_ingest=async_ingest,
        record=record,
        verify=verify,
    )


def replay_capture(
    capture: "StreamCapture | str | Path",
    backend: "str | None" = None,
    shards: "int | None" = None,
    async_ingest: "bool | None" = None,
    verify: bool = True,
) -> ScenarioReport:
    """Replay a ``.rstream`` capture (the one-call form)."""
    return ScenarioRunner.replay(
        capture,
        backend=backend,
        shards=shards,
        async_ingest=async_ingest,
        verify=verify,
    )
