"""The declarative scenario schema (docs/scenarios.md).

A *scenario* is a versioned data file that describes one end-to-end
session run — stream shape, query workload, runtime topology, an
optional chaos schedule, and the expected outcome — so every stress
pattern and every reproduced incident is a committed fixture instead
of bespoke Python.  Files are YAML (the stdlib-parsed subset of
:func:`repro.service.quotas.parse_simple_yaml` — mappings, block
sequences, scalars) or JSON::

    name: rtgs-payments
    stream:
      profile: rtgs_payments      # or synthetic / iot_telemetry / ...
      events: 30000
      keys: 64
      seed: 11
    workload:
      queries:
        - name: exposure
          aggregate: sum
          windows: ["300/50", "600/100"]
        - name: velocity
          aggregate: count
          windows: ["120/30"]
          register_at: 400        # joins mid-stream, at this watermark
    runtime:
      shards: 4
      backend: shm
      rebalance_every: 5000
    expect:
      digest: "sha256 of the committed result set"

Every section is a frozen dataclass built field-wise from the parsed
mapping with **unknown-key rejection** exactly like
:meth:`repro.service.quotas.TenantConfig.merged` — a typo'd knob
silently defaulting would make a digest mismatch undebuggable, so it
raises instead, naming the unknown keys and the known set.

The schema is *declarative only*: compilation to an executable stream
plus session configuration lives in :mod:`repro.scenarios.runner`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path

from ..aggregates.registry import get_aggregate
from ..errors import ExecutionError
from ..runtime.faults import Fault, FaultPlan
from ..service.quotas import parse_simple_yaml
from ..windows.window import Window, WindowSet
from ..workloads.domains import DOMAIN_STREAMS

__all__ = [
    "ChaosSpec",
    "ExpectSpec",
    "FaultSpec",
    "OutOfOrderSpec",
    "QuerySpec",
    "RatePhase",
    "RuntimeSpec",
    "Scenario",
    "StreamSpec",
    "ValueSpec",
    "WorkloadSpec",
    "dump_scenario",
    "load_scenario",
    "parse_scenario",
    "parse_window",
]

#: Stream profiles a scenario may name: the generic synthetic shape
#: (every stream knob available) plus the named workload domains.
STREAM_PROFILES = ("synthetic",) + tuple(sorted(DOMAIN_STREAMS))

#: Value distributions the synthetic profile can sample.
VALUE_DISTRIBUTIONS = ("gaussian", "lognormal", "exponential", "uniform")

SHARD_BACKENDS = ("serial", "process", "shm")


def _build(cls, data, where: str):
    """Build a spec dataclass from a parsed mapping, rejecting unknown
    keys with the :class:`TenantConfig`-shaped error."""
    if data is None:
        data = {}
    if not isinstance(data, dict):
        raise ExecutionError(
            f"scenario section {where!r} must be a mapping, got {data!r}"
        )
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ExecutionError(
            f"unknown {where} key(s) {unknown}; expected a subset of "
            f"{sorted(known)}"
        )
    return cls(**data)


def parse_window(text: "str | int") -> Window:
    """Parse a window literal: ``"range/slide"`` hopping or a bare
    ``"range"`` tumbling (ticks)."""
    raw = str(text).strip()
    try:
        if "/" in raw:
            range_text, slide_text = raw.split("/", 1)
            return Window(int(range_text), int(slide_text))
        return Window(int(raw), int(raw))
    except ValueError:
        raise ExecutionError(
            f"bad window literal {text!r}: expected 'range/slide' or "
            "'range' with integer ticks"
        ) from None


@dataclass(frozen=True)
class ValueSpec:
    """How the synthetic profile samples event values.

    ``round: true`` (the default) rounds every value to a whole
    number, which keeps float64 partial-aggregate merges *exact* — the
    discipline that lets one committed digest hold across shard
    counts, backends, mid-stream rebalancing, and crash recovery.
    Turn it off only for scenarios that never reshard.
    """

    distribution: str = "gaussian"
    mean: float = 20.0
    stddev: float = 5.0
    low: float = 0.0
    high: float = 1.0
    scale: float = 1.0
    round: bool = True

    def __post_init__(self) -> None:
        if self.distribution not in VALUE_DISTRIBUTIONS:
            raise ExecutionError(
                f"unknown value distribution {self.distribution!r}; "
                f"expected one of {VALUE_DISTRIBUTIONS}"
            )
        if self.stddev < 0:
            raise ExecutionError(
                f"values.stddev must be >= 0, got {self.stddev}"
            )
        if self.scale <= 0:
            raise ExecutionError(
                f"values.scale must be > 0, got {self.scale}"
            )
        if self.distribution == "uniform" and self.high <= self.low:
            raise ExecutionError(
                f"values.high must exceed values.low, got "
                f"[{self.low}, {self.high}]"
            )


@dataclass(frozen=True)
class RatePhase:
    """One piece of a piecewise-constant rate schedule: events up to
    the ``until`` fraction of the stream arrive at ``rate``
    events/tick; an optional per-phase ``skew`` override reshapes the
    key distribution mid-stream (the flash-crowd idiom)."""

    until: float
    rate: int
    skew: "float | None" = None

    def __post_init__(self) -> None:
        if not 0.0 < self.until <= 1.0:
            raise ExecutionError(
                f"bad rate schedule: phase 'until' must be in (0, 1], "
                f"got {self.until}"
            )
        if self.rate < 1:
            raise ExecutionError(
                f"bad rate schedule: phase rate must be >= 1, got "
                f"{self.rate}"
            )
        if self.skew is not None and self.skew < 0:
            raise ExecutionError(
                f"stream skew must be >= 0, got {self.skew} (a negative "
                "Zipf exponent is not a distribution)"
            )


@dataclass(frozen=True)
class OutOfOrderSpec:
    """The arrival-disorder profile: each event is displaced by up to
    ``lateness`` arrival positions (seeded jitter, the
    :func:`~repro.engine.outoforder.scramble_batch` model), which a
    ``ReorderBuffer(lateness)`` absorbs without drops."""

    lateness: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.lateness < 0:
            raise ExecutionError(
                f"out_of_order.lateness must be >= 0, got {self.lateness}"
            )


@dataclass(frozen=True)
class StreamSpec:
    """What arrives: event count, key cardinality, skew, rate
    schedule, out-of-order profile, value distribution.

    ``profile: synthetic`` exposes every knob; a named domain profile
    (``rtgs_payments`` / ``iot_telemetry`` / ``flash_crowd``) brings
    its own rate curve, skew, and value process, so the shape knobs
    must stay unset for it (the ``out_of_order`` profile still
    applies — disorder is an ingest property, not a domain one).
    """

    profile: str = "synthetic"
    events: int = 10_000
    keys: int = 16
    seed: int = 1
    skew: "float | None" = None
    rate: "int | None" = None
    rate_schedule: "tuple | None" = None
    out_of_order: "OutOfOrderSpec | None" = None
    values: "ValueSpec | None" = None

    def __post_init__(self) -> None:
        if self.profile not in STREAM_PROFILES:
            raise ExecutionError(
                f"unknown stream profile {self.profile!r}; expected one "
                f"of {STREAM_PROFILES}"
            )
        if self.events < 1:
            raise ExecutionError(
                f"stream.events must be >= 1, got {self.events}"
            )
        if self.keys < 1:
            raise ExecutionError(
                f"stream.keys must be >= 1, got {self.keys}"
            )
        if self.skew is not None and self.skew < 0:
            raise ExecutionError(
                f"stream skew must be >= 0, got {self.skew} (a negative "
                "Zipf exponent is not a distribution)"
            )
        if self.rate is not None and self.rate < 1:
            raise ExecutionError(
                f"stream.rate must be >= 1, got {self.rate}"
            )
        if isinstance(self.out_of_order, dict):
            object.__setattr__(
                self,
                "out_of_order",
                _build(OutOfOrderSpec, self.out_of_order, "out_of_order"),
            )
        if isinstance(self.values, dict):
            object.__setattr__(
                self, "values", _build(ValueSpec, self.values, "values")
            )
        if self.rate_schedule is not None:
            if not isinstance(self.rate_schedule, (list, tuple)) or not (
                self.rate_schedule
            ):
                raise ExecutionError(
                    "bad rate schedule: expected a non-empty sequence of "
                    f"phases, got {self.rate_schedule!r}"
                )
            for phase in self.rate_schedule:
                if not isinstance(phase, (dict, RatePhase)):
                    raise ExecutionError(
                        "bad rate schedule: each phase must be a mapping "
                        f"with until/rate, got {phase!r}"
                    )
            phases = tuple(
                _build(RatePhase, phase, "rate_schedule phase")
                if isinstance(phase, dict)
                else phase
                for phase in self.rate_schedule
            )
            object.__setattr__(self, "rate_schedule", phases)
            if self.rate is not None:
                raise ExecutionError(
                    "bad rate schedule: stream.rate and "
                    "stream.rate_schedule are mutually exclusive (the "
                    "schedule fixes the rate per phase)"
                )
            last = 0.0
            for phase in phases:
                if phase.until <= last:
                    raise ExecutionError(
                        "bad rate schedule: phase 'until' fractions must "
                        f"be strictly increasing, got {phase.until} after "
                        f"{last}"
                    )
                last = phase.until
            if last != 1.0:
                raise ExecutionError(
                    "bad rate schedule: the last phase must end at "
                    f"until: 1.0, got {last}"
                )
        if self.profile != "synthetic":
            preset = [
                knob
                for knob, value in (
                    ("skew", self.skew),
                    ("rate", self.rate),
                    ("rate_schedule", self.rate_schedule),
                    ("values", self.values),
                )
                if value is not None
            ]
            if preset:
                raise ExecutionError(
                    f"stream profile {self.profile!r} generates its own "
                    f"shape; remove {preset} (only events/keys/seed/"
                    "out_of_order apply to a domain profile)"
                )


@dataclass(frozen=True)
class QuerySpec:
    """One query of the workload, with its lifecycle schedule.

    ``windows`` are literals (``"range/slide"`` or tumbling
    ``"range"``); ``register_at`` / ``deregister_at`` are stream
    watermarks — the query joins at the first arrival whose timestamp
    reaches ``register_at`` and leaves at ``deregister_at``.
    """

    name: str
    aggregate: str = "sum"
    windows: tuple = ("300/50",)
    scope: str = "per_key"
    register_at: int = 0
    deregister_at: "int | None" = None

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise ExecutionError("every query needs a non-empty name")
        get_aggregate(str(self.aggregate))
        if isinstance(self.windows, (str, int)):
            object.__setattr__(self, "windows", (self.windows,))
        if not isinstance(self.windows, (list, tuple)) or not self.windows:
            raise ExecutionError(
                f"query {self.name!r}: windows must be a non-empty "
                f"sequence of window literals, got {self.windows!r}"
            )
        object.__setattr__(
            self, "windows", tuple(str(w) for w in self.windows)
        )
        seen = self.window_set()  # validates every literal, rejects dups
        del seen
        if self.scope not in ("per_key", "global"):
            raise ExecutionError(
                f"query {self.name!r}: scope must be 'per_key' or "
                f"'global', got {self.scope!r}"
            )
        if self.register_at < 0:
            raise ExecutionError(
                f"query {self.name!r}: register_at must be >= 0, got "
                f"{self.register_at}"
            )
        if self.deregister_at is not None and (
            self.deregister_at <= self.register_at
        ):
            raise ExecutionError(
                f"query {self.name!r}: deregister_at "
                f"({self.deregister_at}) must be after register_at "
                f"({self.register_at})"
            )

    def window_set(self) -> WindowSet:
        windows = WindowSet()
        for literal in self.windows:
            window = parse_window(literal)
            if window in windows:
                raise ExecutionError(
                    f"query {self.name!r}: duplicate window {literal!r}"
                )
            windows.add(window)
        return windows


@dataclass(frozen=True)
class WorkloadSpec:
    """The query mix: what runs, and when each query joins/leaves."""

    queries: tuple = ()

    def __post_init__(self) -> None:
        if not isinstance(self.queries, (list, tuple)) or not self.queries:
            raise ExecutionError(
                "workload.queries must be a non-empty sequence of queries"
            )
        specs = tuple(
            _build(QuerySpec, q, "query") if isinstance(q, dict) else q
            for q in self.queries
        )
        object.__setattr__(self, "queries", specs)
        seen: set = set()
        for spec in specs:
            if spec.name in seen:
                raise ExecutionError(
                    f"duplicate query name {spec.name!r} in workload"
                )
            seen.add(spec.name)

    def names(self) -> "tuple[str, ...]":
        return tuple(spec.name for spec in self.queries)


@dataclass(frozen=True)
class RuntimeSpec:
    """Where the scenario runs: shards, backend, ingest mode, slots,
    rebalance cadence.  Everything here is an *execution* choice — by
    invariants 10/11 it must not change the answer, and the runner's
    CLI can override any of it without invalidating the expected
    digest."""

    shards: int = 1
    backend: str = "serial"
    async_ingest: bool = False
    slots: "int | None" = None
    lateness: "int | None" = None
    chunk_ticks: "int | None" = None
    rebalance_every: int = 0
    worker_recovery: bool = False

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ExecutionError(
                f"runtime.shards must be >= 1, got {self.shards}"
            )
        if self.backend not in SHARD_BACKENDS:
            raise ExecutionError(
                f"runtime.backend must be one of {SHARD_BACKENDS}, got "
                f"{self.backend!r}"
            )
        if self.lateness is not None and self.lateness < 0:
            raise ExecutionError(
                f"runtime.lateness must be >= 0, got {self.lateness}"
            )
        if self.rebalance_every < 0:
            raise ExecutionError(
                f"runtime.rebalance_every must be >= 0, got "
                f"{self.rebalance_every}"
            )


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault (see :mod:`repro.runtime.faults`); compiles
    to a fresh :class:`~repro.runtime.faults.Fault` per run."""

    kind: str = "kill"
    slot: int = 0
    at_watermark: "int | None" = None
    op: "str | None" = None
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        self.build()  # surface bad fault specs at load time

    def build(self) -> Fault:
        return Fault(
            kind=self.kind,
            slot=self.slot,
            at_watermark=self.at_watermark,
            op=self.op,
            delay_seconds=self.delay_seconds,
        )


@dataclass(frozen=True)
class ChaosSpec:
    """The deterministic fault schedule a chaos-marked scenario plays
    against its own run.  Faults fire on the worker backends
    (``process`` / ``shm``); recovery must keep the digest identical
    (invariant 12), which is exactly what the conformance tier
    asserts."""

    faults: tuple = ()

    def __post_init__(self) -> None:
        if not isinstance(self.faults, (list, tuple)) or not self.faults:
            raise ExecutionError(
                "chaos.faults must be a non-empty sequence of faults "
                "(drop the chaos section for a fault-free run)"
            )
        specs = tuple(
            _build(FaultSpec, f, "fault") if isinstance(f, dict) else f
            for f in self.faults
        )
        object.__setattr__(self, "faults", specs)

    def build_plan(self) -> FaultPlan:
        return FaultPlan(*(spec.build() for spec in self.faults))


@dataclass(frozen=True)
class ExpectSpec:
    """The committed outcome: a result digest plus stat bounds.

    ``digest`` pins the full result set bit-for-bit; ``accepted`` /
    ``late_dropped`` pin the reorder counters; ``total_pairs`` pins
    the logical work (machine-independent, DESIGN.md invariant 6);
    ``min_throughput`` is a soft floor in events/second (checked only
    when > 0 — wall-clock is hardware-dependent, so committed
    scenarios leave it unset and benches set it at run time).
    ``queries`` maps query names to expected emitted instance counts.
    """

    digest: "str | None" = None
    accepted: "int | None" = None
    late_dropped: "int | None" = None
    total_pairs: "int | None" = None
    min_throughput: "float | None" = None
    queries: "dict | None" = None

    def __post_init__(self) -> None:
        if self.queries is not None:
            if not isinstance(self.queries, dict):
                raise ExecutionError(
                    "expect.queries must map query names to expected "
                    f"instance counts, got {self.queries!r}"
                )
            for name, instances in self.queries.items():
                if not isinstance(instances, int) or instances < 0:
                    raise ExecutionError(
                        f"expect.queries[{name!r}] must be a non-negative "
                        f"instance count, got {instances!r}"
                    )


#: Top-level scenario sections, in canonical (dump) order.
_SECTIONS = ("stream", "workload", "runtime", "chaos", "expect")


@dataclass(frozen=True)
class Scenario:
    """One complete declarative scenario (parsed and validated)."""

    name: str
    description: str = ""
    stream: StreamSpec = field(default_factory=StreamSpec)
    workload: WorkloadSpec = field(
        default_factory=lambda: WorkloadSpec(({"name": "q"},))
    )
    runtime: RuntimeSpec = field(default_factory=RuntimeSpec)
    chaos: "ChaosSpec | None" = None
    expect: ExpectSpec = field(default_factory=ExpectSpec)

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise ExecutionError("a scenario needs a non-empty name")
        if self.expect.queries:
            known = set(self.workload.names())
            dangling = sorted(set(self.expect.queries) - known)
            if dangling:
                raise ExecutionError(
                    f"expect.queries references unknown query(s) "
                    f"{dangling}; the workload defines "
                    f"{sorted(known)} (dangling query reference)"
                )
        if self.chaos is not None and self.runtime.backend == "serial":
            raise ExecutionError(
                "a chaos schedule needs a worker backend "
                "(runtime.backend: process or shm) — the serial backend "
                "has no workers to fault"
            )


def parse_scenario(data: dict, name: str = "") -> Scenario:
    """Build a validated :class:`Scenario` from a parsed mapping."""
    if not isinstance(data, dict):
        raise ExecutionError(
            f"a scenario must be a mapping of sections, got {data!r}"
        )
    known = {"name", "description", *_SECTIONS}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ExecutionError(
            f"unknown scenario section(s) {unknown}; expected a subset "
            f"of {sorted(known)}"
        )
    resolved = str(data.get("name") or name or "").strip()
    return Scenario(
        name=resolved,
        description=str(data.get("description") or ""),
        stream=_build(StreamSpec, data.get("stream"), "stream"),
        workload=_build(WorkloadSpec, data.get("workload"), "workload"),
        runtime=_build(RuntimeSpec, data.get("runtime"), "runtime"),
        chaos=(
            _build(ChaosSpec, data["chaos"], "chaos")
            if data.get("chaos") is not None
            else None
        ),
        expect=_build(ExpectSpec, data.get("expect"), "expect"),
    )


def load_scenario(source: "str | Path | dict") -> Scenario:
    """Load a scenario from a path, raw YAML/JSON text, or a dict.

    A path source names the scenario after its file stem unless the
    file carries an explicit ``name:``.
    """
    if isinstance(source, dict):
        return parse_scenario(source)
    name = ""
    text = str(source)
    if isinstance(source, Path) or (
        "\n" not in text and text.endswith((".yaml", ".yml", ".json"))
    ):
        path = Path(source)
        name = path.stem
        text = path.read_text()
    return parse_scenario(parse_simple_yaml(text), name=name)


def _dump_scalar(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    from ..service.quotas import _parse_scalar

    if _parse_scalar(text) == text and "#" not in text and text:
        return text
    return json.dumps(text)


def _dump_mapping(data: dict, indent: int, lines: "list[str]") -> None:
    pad = " " * indent
    for key, value in data.items():
        if value is None:
            continue
        if isinstance(value, dict):
            if not value:
                continue
            lines.append(f"{pad}{key}:")
            _dump_mapping(value, indent + 2, lines)
        elif isinstance(value, (list, tuple)):
            lines.append(f"{pad}{key}:")
            for item in value:
                if isinstance(item, dict):
                    entries = [
                        (k, v) for k, v in item.items() if v is not None
                    ]
                    first_key, first_value = entries[0]
                    lines.append(
                        f"{pad}  - {first_key}: {_dump_scalar(first_value)}"
                    )
                    _dump_mapping(dict(entries[1:]), indent + 4, lines)
                else:
                    lines.append(f"{pad}  - {_dump_scalar(item)}")
        else:
            lines.append(f"{pad}{key}: {_dump_scalar(value)}")


def _spec_dict(spec) -> dict:
    """A spec dataclass as a plain mapping, nested specs included
    (``None`` fields dropped by the dumper)."""
    out: dict = {}
    for f in fields(spec):
        value = getattr(spec, f.name)
        if hasattr(value, "__dataclass_fields__"):
            value = _spec_dict(value)
        elif isinstance(value, tuple):
            value = [
                _spec_dict(v) if hasattr(v, "__dataclass_fields__") else v
                for v in value
            ]
        out[f.name] = value
    return out


def scenario_dict(scenario: Scenario) -> dict:
    """The scenario as a plain nested mapping (the dump/JSON shape)."""
    data: dict = {"name": scenario.name}
    if scenario.description:
        data["description"] = scenario.description
    for section in _SECTIONS:
        spec = getattr(scenario, section)
        if spec is None:
            continue
        data[section] = _spec_dict(spec)
    return data


def dump_scenario(scenario: Scenario) -> str:
    """Serialize a scenario back to the YAML subset it parses from —
    ``parse → dump → parse`` is the identity on every valid scenario
    (the golden-file round-trip test)."""
    lines: "list[str]" = []
    _dump_mapping(scenario_dict(scenario), 0, lines)
    return "\n".join(lines) + "\n"
