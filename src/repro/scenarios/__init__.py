"""Declarative scenarios: parse, compile, run, record, replay.

A scenario is a YAML/JSON file that pins a complete experiment —
stream shape, query workload, runtime layout, optional chaos schedule,
and the expected outcome — so one committed file reproduces one result
everywhere (see ``docs/scenarios.md`` and the ``scenarios/`` library).
"""

from .rstream import (
    RSTREAM_MAGIC,
    RSTREAM_VERSION,
    StreamCapture,
    read_rstream,
    write_rstream,
)
from .runner import (
    CompiledStream,
    ScenarioReport,
    ScenarioRunner,
    compile_scenario,
    replay_capture,
    results_digest,
    run_scenario,
)
from .schema import (
    SHARD_BACKENDS,
    STREAM_PROFILES,
    VALUE_DISTRIBUTIONS,
    ChaosSpec,
    ExpectSpec,
    FaultSpec,
    OutOfOrderSpec,
    QuerySpec,
    RatePhase,
    RuntimeSpec,
    Scenario,
    StreamSpec,
    ValueSpec,
    WorkloadSpec,
    dump_scenario,
    load_scenario,
    parse_scenario,
    parse_window,
    scenario_dict,
)

__all__ = [
    "RSTREAM_MAGIC",
    "RSTREAM_VERSION",
    "SHARD_BACKENDS",
    "STREAM_PROFILES",
    "VALUE_DISTRIBUTIONS",
    "ChaosSpec",
    "CompiledStream",
    "ExpectSpec",
    "FaultSpec",
    "OutOfOrderSpec",
    "QuerySpec",
    "RatePhase",
    "RuntimeSpec",
    "Scenario",
    "ScenarioReport",
    "ScenarioRunner",
    "StreamCapture",
    "StreamSpec",
    "ValueSpec",
    "WorkloadSpec",
    "compile_scenario",
    "dump_scenario",
    "load_scenario",
    "parse_scenario",
    "parse_window",
    "read_rstream",
    "replay_capture",
    "results_digest",
    "run_scenario",
    "scenario_dict",
    "write_rstream",
]
