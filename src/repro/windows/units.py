"""Time units for window specifications.

The paper assumes range and slide are integers sharing one time unit
(Section II-A).  The SQL front end, however, accepts mixed units
(``TUMBLING(MINUTE, 20)`` next to ``HOPPING(SECOND, 90, 30)``), so this
module normalizes everything to integer *ticks* — seconds by default.
"""

from __future__ import annotations

from ..errors import SqlSemanticError

#: Multiplier from each supported unit to seconds.
SECONDS_PER_UNIT: dict[str, int] = {
    "microsecond": 0,  # placeholder; sub-second units are rejected below
    "second": 1,
    "minute": 60,
    "hour": 3_600,
    "day": 86_400,
}

#: Accepted aliases (ASA and common SQL spellings), mapped to canonical names.
UNIT_ALIASES: dict[str, str] = {
    "s": "second",
    "ss": "second",
    "sec": "second",
    "second": "second",
    "seconds": "second",
    "m": "minute",
    "mi": "minute",
    "min": "minute",
    "minute": "minute",
    "minutes": "minute",
    "h": "hour",
    "hh": "hour",
    "hour": "hour",
    "hours": "hour",
    "d": "day",
    "dd": "day",
    "day": "day",
    "days": "day",
}


def canonical_unit(name: str) -> str:
    """Return the canonical unit name for ``name``.

    Raises :class:`SqlSemanticError` for unknown or unsupported units.
    """
    key = name.strip().lower()
    if key not in UNIT_ALIASES:
        raise SqlSemanticError(f"unknown time unit: {name!r}")
    unit = UNIT_ALIASES[key]
    if SECONDS_PER_UNIT.get(unit, 0) <= 0:
        raise SqlSemanticError(f"unsupported time unit: {name!r}")
    return unit


def to_ticks(value: int, unit: str = "second") -> int:
    """Convert ``value`` in ``unit`` to integer ticks (seconds).

    ``value`` must be a positive integer; windows with fractional or
    non-positive durations are invalid in the paper's model.
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise SqlSemanticError(f"duration must be an integer, got {value!r}")
    if value <= 0:
        raise SqlSemanticError(f"duration must be positive, got {value}")
    return value * SECONDS_PER_UNIT[canonical_unit(unit)]


def parse_duration(text: str) -> int:
    """Parse a human-readable duration such as ``"20 min"`` into ticks.

    Accepts ``"<int> <unit>"`` or a bare integer (already in ticks).
    """
    parts = text.strip().split()
    if len(parts) == 1:
        try:
            value = int(parts[0])
        except ValueError as exc:
            raise SqlSemanticError(f"cannot parse duration {text!r}") from exc
        return to_ticks(value, "second")
    if len(parts) == 2:
        try:
            value = int(parts[0])
        except ValueError as exc:
            raise SqlSemanticError(f"cannot parse duration {text!r}") from exc
        return to_ticks(value, parts[1])
    raise SqlSemanticError(f"cannot parse duration {text!r}")


def format_duration(ticks: int) -> str:
    """Render ``ticks`` with the largest unit that divides it evenly."""
    for unit in ("day", "hour", "minute"):
        per = SECONDS_PER_UNIT[unit]
        if ticks % per == 0 and ticks >= per:
            return f"{ticks // per} {unit}"
    return f"{ticks} second"
