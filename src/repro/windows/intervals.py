"""Interval-level views of windows and brute-force coverage oracles.

Section II of the paper defines window coverage/partitioning in terms of
the *interval representation* ``W = {[m*s, m*s + r)}``.  The closed-form
tests (Theorems 1 and 4) live in :mod:`repro.windows.coverage`; this
module provides the direct, definition-level machinery:

* enumerating intervals,
* computing the covering set of an interval (Definition 2),
* brute-force checks of coverage/partitioning straight from
  Definitions 1, 4 and 5.

The brute-force checks are deliberately simple and slow.  They exist so
property-based tests can confirm the closed-form theorems against the
definitions on thousands of random window pairs.
"""

from __future__ import annotations

from typing import Iterator

from .window import Window

Interval = tuple[int, int]


def intervals(window: Window, count: int) -> list[Interval]:
    """The first ``count`` intervals of ``window``'s lifetime."""
    return [window.interval(m) for m in range(count)]


def iter_intervals(window: Window) -> Iterator[Interval]:
    """Infinite iterator over the interval representation of ``window``."""
    m = 0
    while True:
        yield window.interval(m)
        m += 1


def covering_set(interval: Interval, provider: Window) -> "list[Interval] | None":
    """Covering set of ``interval`` in ``provider`` (Definition 2), if any.

    Returns the intervals ``[u, v)`` of ``provider`` with
    ``a <= u`` and ``v <= b`` for ``interval = [a, b)`` — but only when
    they actually satisfy Definition 1: some interval starts exactly at
    ``a``, some ends exactly at ``b``, and their union is ``[a, b)``.
    Returns ``None`` when ``interval`` is not covered by ``provider``.
    """
    a, b = interval
    if b <= a:
        return None
    result: list[Interval] = []
    # Candidate provider instances [u, v) with u >= a and v <= b.
    # First start >= a is m_lo = ceil(a / s); last with end <= b needs
    # m*s + r <= b, i.e. m <= (b - r) / s.
    s, r = provider.slide, provider.range
    if b - a < r:
        return None
    m_lo = -(-a // s)
    m_hi = (b - r) // s
    if m_hi < m_lo or m_lo < 0:
        return None
    for m in range(m_lo, m_hi + 1):
        result.append(provider.interval(m))
    if not result:
        return None
    if result[0][0] != a or result[-1][1] != b:
        return None
    # Union must be the full interval with no gap: since intervals are
    # sorted by start, a gap exists iff some start exceeds the running
    # max end.
    reach = result[0][1]
    for u, v in result[1:]:
        if u > reach:
            return None
        reach = max(reach, v)
    if reach != b:
        return None
    return result


def brute_force_covered_by(
    consumer: Window, provider: Window, instances: int = 8
) -> bool:
    """Definition-1 check of ``consumer <= provider`` on the first
    ``instances`` intervals of ``consumer``.

    Coverage requires ``r_consumer > r_provider`` (or window identity).
    Because both windows are periodic, checking a handful of leading
    intervals is sufficient in practice; the property tests compare this
    against Theorem 1 for confidence.
    """
    if consumer == provider:
        return True
    if consumer.range <= provider.range:
        return False
    for m in range(instances):
        if covering_set(consumer.interval(m), provider) is None:
            return False
    return True


def brute_force_partitioned_by(
    consumer: Window, provider: Window, instances: int = 8
) -> bool:
    """Definition-5 check: coverage where every covering set is disjoint."""
    if consumer == provider:
        # A window trivially covers itself, but the covering set is the
        # single identical interval, which is vacuously disjoint.
        return True
    if consumer.range <= provider.range:
        return False
    for m in range(instances):
        cover = covering_set(consumer.interval(m), provider)
        if cover is None:
            return False
        for (u1, v1), (u2, v2) in zip(cover, cover[1:]):
            if u2 < v1:  # consecutive intervals overlap
                return False
    return True


def brute_force_multiplier(
    consumer: Window, provider: Window
) -> "int | None":
    """``|I_{a,b}|`` — the covering multiplier — computed by enumeration.

    Returns ``None`` when ``consumer`` is not covered by ``provider``.
    Matches Theorem 3 (``M = 1 + (r1 - r2)/s2``) whenever coverage holds.
    """
    if consumer == provider:
        return 1
    cover = covering_set(consumer.interval(1), provider)
    if cover is None or not brute_force_covered_by(consumer, provider):
        return None
    return len(cover)
