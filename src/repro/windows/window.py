"""The window model: ``W⟨r, s⟩`` with integer range and slide.

Follows Section II-A of the paper: a window ``W⟨r, s⟩`` has a *range*
``r`` (duration) and *slide* ``s`` (gap between consecutive firings),
with ``0 < s <= r``.  A window is *tumbling* when ``s == r`` and
*hopping* when ``s < r``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import CostModelError, InvalidWindowError
from .units import format_duration


@dataclass(frozen=True, order=True)
class Window:
    """An immutable window specification ``W⟨r, s⟩``.

    Parameters
    ----------
    range:
        Window duration in ticks; must be a positive integer.
    slide:
        Gap between consecutive firings in ticks; ``0 < slide <= range``.
    name:
        Optional display name (e.g. ``'20 min'``); not part of identity.

    The ordering (``order=True``) sorts by ``(range, slide)``, which puts
    potential *providers* (smaller windows) before their consumers — a
    convenient property for deterministic graph traversals.
    """

    range: int
    slide: int
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.range, int) or isinstance(self.range, bool):
            raise InvalidWindowError(f"range must be an integer, got {self.range!r}")
        if not isinstance(self.slide, int) or isinstance(self.slide, bool):
            raise InvalidWindowError(f"slide must be an integer, got {self.slide!r}")
        if self.slide <= 0:
            raise InvalidWindowError(f"slide must be positive, got {self.slide}")
        if self.range < self.slide:
            raise InvalidWindowError(
                f"range ({self.range}) must be >= slide ({self.slide})"
            )

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def is_tumbling(self) -> bool:
        """True when ``slide == range`` (Section II-A)."""
        return self.slide == self.range

    @property
    def is_hopping(self) -> bool:
        """True when ``slide < range`` (Section II-A)."""
        return self.slide < self.range

    @property
    def instances_per_event(self) -> int:
        """``k = r / s``: how many window instances each event joins.

        Requires ``r`` to be a multiple of ``s`` (the paper's standing
        assumption for integer recurrence counts).
        """
        if self.range % self.slide != 0:
            raise CostModelError(
                f"{self} has range not a multiple of slide; "
                "the cost model requires r % s == 0"
            )
        return self.range // self.slide

    # ------------------------------------------------------------------
    # Interval representation (Section II-A-1)
    # ------------------------------------------------------------------
    def interval(self, m: int) -> tuple[int, int]:
        """Return the ``m``-th interval ``[m*s, m*s + r)`` of the window."""
        if m < 0:
            raise InvalidWindowError(f"interval index must be >= 0, got {m}")
        start = m * self.slide
        return (start, start + self.range)

    def instance_range(self, horizon: int) -> range:
        """Indices of instances fully contained in ``[0, horizon)``.

        An instance ``m`` is complete when ``m*s + r <= horizon``.
        """
        if horizon < self.range:
            return range(0)
        last = (horizon - self.range) // self.slide
        return range(last + 1)

    def instances_covering(self, ts: int) -> range:
        """Indices of instances whose interval contains timestamp ``ts``.

        An event at ``ts`` belongs to instance ``m`` iff
        ``m*s <= ts < m*s + r``, i.e. ``m`` in
        ``[floor((ts - r)/s) + 1, floor(ts/s)]`` intersected with
        ``m >= 0``.
        """
        if ts < 0:
            return range(0)
        hi = ts // self.slide
        lo = max(0, -(-(ts - self.range + 1) // self.slide))
        return range(lo, hi + 1)

    def recurrence_count(self, period: int) -> int:
        """Recurrence count ``n = 1 + (R - r)/s`` over ``period`` ticks.

        This is the derivation form from Section III-B: the number of
        complete instances packed into a period of length ``R``, counting
        the one ending exactly at ``R``.  Requires ``s | (R - r)``, which
        always holds when ``R`` is the lcm of the window-set ranges and
        every range is a multiple of its slide (see DESIGN.md §3).
        """
        if period < self.range:
            raise CostModelError(
                f"period {period} is shorter than range of {self}"
            )
        if (period - self.range) % self.slide != 0:
            raise CostModelError(
                f"recurrence count of {self} over period {period} is not an "
                f"integer: (R - r) = {period - self.range} is not a multiple "
                f"of s = {self.slide}"
            )
        return 1 + (period - self.range) // self.slide

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Display name, falling back to a duration-formatted range."""
        if self.name:
            return self.name
        if self.is_tumbling:
            return format_duration(self.range)
        return f"{format_duration(self.range)}/{format_duration(self.slide)}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "tumbling" if self.is_tumbling else "hopping"
        return f"W({self.range}, {self.slide}) [{kind}]"


#: The virtual root window ``S⟨1, 1⟩`` used to augment the WCG (§IV-A).
VIRTUAL_ROOT = Window(1, 1, name="S")


def tumbling(range_: int, name: str = "") -> Window:
    """Convenience constructor for a tumbling window ``W⟨r, r⟩``."""
    return Window(range_, range_, name=name)


def hopping(range_: int, slide: int, name: str = "") -> Window:
    """Convenience constructor for a hopping window ``W⟨r, s⟩``."""
    return Window(range_, slide, name=name)


class WindowSet:
    """An ordered, duplicate-free collection of windows (Section II-A).

    Iteration order is insertion order, which keeps optimizer output
    deterministic; membership and equality ignore order.
    """

    def __init__(self, windows: "list[Window] | tuple[Window, ...]" = ()):
        self._windows: list[Window] = []
        self._seen: set[Window] = set()
        for window in windows:
            self.add(window)

    def add(self, window: Window) -> None:
        """Add ``window``; duplicates (same range and slide) are errors."""
        if not isinstance(window, Window):
            raise InvalidWindowError(f"expected a Window, got {window!r}")
        if window in self._seen:
            raise InvalidWindowError(f"duplicate window in window set: {window}")
        self._windows.append(window)
        self._seen.add(window)

    def __iter__(self):
        return iter(self._windows)

    def __len__(self) -> int:
        return len(self._windows)

    def __contains__(self, window: Window) -> bool:
        return window in self._seen

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WindowSet):
            return NotImplemented
        return self._seen == other._seen

    def __hash__(self) -> int:
        return hash(frozenset(self._seen))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(w) for w in self._windows)
        return f"WindowSet([{inner}])"

    @property
    def windows(self) -> tuple[Window, ...]:
        """The windows in insertion order."""
        return tuple(self._windows)

    @property
    def ranges(self) -> tuple[int, ...]:
        return tuple(w.range for w in self._windows)

    @property
    def slides(self) -> tuple[int, ...]:
        return tuple(w.slide for w in self._windows)

    def hyper_period(self) -> int:
        """``R = lcm(r1, ..., rn)``, the cost model's analysis period."""
        if not self._windows:
            raise CostModelError("hyper-period of an empty window set")
        return math.lcm(*self.ranges)

    def validate_for_cost_model(self) -> None:
        """Check the paper's standing assumption ``r % s == 0`` per window."""
        for window in self._windows:
            window.instances_per_event  # raises CostModelError if violated

    def sorted(self) -> "WindowSet":
        """A copy sorted by ``(range, slide)`` — providers first."""
        return WindowSet(sorted(self._windows))
