"""Window model: specifications, intervals, and coverage relations.

This package implements Section II of the paper — the formal study of
overlapping relationships between windows — plus the time-unit handling
the SQL front end needs.
"""

from .coverage import (
    CoverageSemantics,
    covered_by,
    covering_multiplier,
    partitioned_by,
    provider_instance_offsets,
    relates,
    strictly_relates,
)
from .intervals import (
    brute_force_covered_by,
    brute_force_multiplier,
    brute_force_partitioned_by,
    covering_set,
    intervals,
    iter_intervals,
)
from .units import canonical_unit, format_duration, parse_duration, to_ticks
from .window import VIRTUAL_ROOT, Window, WindowSet, hopping, tumbling

__all__ = [
    "CoverageSemantics",
    "VIRTUAL_ROOT",
    "Window",
    "WindowSet",
    "brute_force_covered_by",
    "brute_force_multiplier",
    "brute_force_partitioned_by",
    "canonical_unit",
    "covered_by",
    "covering_multiplier",
    "covering_set",
    "format_duration",
    "hopping",
    "intervals",
    "iter_intervals",
    "parse_duration",
    "partitioned_by",
    "provider_instance_offsets",
    "relates",
    "strictly_relates",
    "to_ticks",
    "tumbling",
]
