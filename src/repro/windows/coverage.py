"""Closed-form window coverage and partitioning tests.

Implements the paper's Theorems 1, 3 and 4 (Section II-B):

* ``covered_by(W1, W2)`` — constant-time test of ``W1 <= W2``
  ("W1 is covered by W2"): every interval of ``W1`` is a union of
  intervals of ``W2``.
* ``partitioned_by(W1, W2)`` — the special case where the covering
  intervals are disjoint; requires ``W2`` to be tumbling.
* ``covering_multiplier(W1, W2)`` — ``M(W1, W2) = 1 + (r1 - r2)/s2``,
  the number of provider instances each consumer instance reads.

Terminology used throughout the library: in ``W1 <= W2`` we call ``W1``
the *consumer* (the larger window, which reads sub-aggregates) and
``W2`` the *provider* (the smaller window, which produces them).
"""

from __future__ import annotations

from enum import Enum

from ..errors import InvalidWindowError
from .window import Window


class CoverageSemantics(str, Enum):
    """Which coverage relation an aggregate function may exploit.

    * ``COVERED_BY`` — the general relation (Definition 1).  Usable only
      by aggregates that stay distributive over *overlapping* partitions
      (MIN, MAX — Theorem 6).
    * ``PARTITIONED_BY`` — the disjoint special case (Definition 5).
      Usable by any distributive or algebraic aggregate (Theorem 5).
    """

    COVERED_BY = "covered_by"
    PARTITIONED_BY = "partitioned_by"

    def relation(self):
        """The pairwise predicate implementing this semantics."""
        if self is CoverageSemantics.COVERED_BY:
            return covered_by
        return partitioned_by

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def covered_by(consumer: Window, provider: Window) -> bool:
    """Theorem 1: ``consumer <= provider`` iff

    1. ``s_consumer`` is a multiple of ``s_provider``, and
    2. ``r_consumer - r_provider`` is a (positive) multiple of
       ``s_provider``.

    Definition 1 additionally requires ``r_consumer > r_provider``;
    identical windows are covered by convention (reflexivity).
    """
    if consumer == provider:
        return True
    if consumer.range <= provider.range:
        return False
    if consumer.slide % provider.slide != 0:
        return False
    return (consumer.range - provider.range) % provider.slide == 0


def partitioned_by(consumer: Window, provider: Window) -> bool:
    """Theorem 4: ``consumer`` is partitioned by ``provider`` iff

    1. ``s_consumer`` is a multiple of ``s_provider``,
    2. ``r_consumer`` is a multiple of ``s_provider``, and
    3. ``provider`` is tumbling (``r_provider == s_provider``).
    """
    if consumer == provider:
        return True
    if consumer.range <= provider.range:
        return False
    if not provider.is_tumbling:
        return False
    if consumer.slide % provider.slide != 0:
        return False
    return consumer.range % provider.slide == 0


def covering_multiplier(consumer: Window, provider: Window) -> int:
    """Theorem 3: ``M(W1, W2) = 1 + (r1 - r2) / s2``.

    Only defined when ``consumer <= provider``; raises otherwise.
    ``M(W, W) == 1`` by reflexivity.
    """
    if not covered_by(consumer, provider):
        raise InvalidWindowError(
            f"covering multiplier undefined: {consumer} is not covered by "
            f"{provider}"
        )
    return 1 + (consumer.range - provider.range) // provider.slide


def relates(
    consumer: Window, provider: Window, semantics: CoverageSemantics
) -> bool:
    """``consumer`` can read sub-aggregates of ``provider`` under
    ``semantics``."""
    return semantics.relation()(consumer, provider)


def strictly_relates(
    consumer: Window, provider: Window, semantics: CoverageSemantics
) -> bool:
    """Like :func:`relates` but excluding the reflexive case."""
    return consumer != provider and relates(consumer, provider, semantics)


def provider_instance_offsets(consumer: Window, provider: Window) -> list[int]:
    """Start offsets of the covering set relative to a consumer interval.

    For consumer instance ``[a, b)``, the covering provider instances
    start at ``a, a + s2, ..., a + (M - 1) * s2`` (proof of Theorem 3).
    Returned offsets are relative to ``a``.
    """
    multiplier = covering_multiplier(consumer, provider)
    return [j * provider.slide for j in range(multiplier)]
