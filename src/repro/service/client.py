"""A dependency-free blocking client for the session service.

:class:`ServiceClient` speaks the JSON-lines protocol over one TCP
connection.  :meth:`request` is the raw exchange (one dict in, one
dict out); the typed convenience methods raise the protocol's failure
shapes as exceptions — :class:`~repro.service.protocol.Overloaded`
with its ``reason`` and ``retry_after``,
:class:`~repro.service.protocol.BadRequest`, and plain
:class:`~repro.errors.ExecutionError` for ``failed`` — so callers
handle overload explicitly instead of pattern-matching reply dicts.

Retries are *opt-in and bounded*: ``with_retry`` / ``ingest_with_retry``
wrap any op in a :class:`~repro.service.supervise.RetryPolicy`
(bounded attempts, exponential backoff, seeded jitter, optional wall
deadline) and honor the server's ``retry_after`` quote — the client
sleeps the *larger* of its own jittered backoff and the server's hint,
so it never hammers a breaker that told it exactly when to come back.
``bad_request`` is never retried (it is deterministic by contract).

Every exchange is bounded by the socket ``timeout``: a reply that does
not arrive in time raises, it does not hang the caller.
"""

from __future__ import annotations

import socket
import time

from ..errors import ExecutionError
from .protocol import (
    BadRequest,
    Overloaded,
    decode_line,
    deserialize_results,
    encode_line,
)
from .supervise import RetryPolicy

__all__ = ["ServiceClient"]


class ServiceClient:
    """One blocking JSON-lines connection to a :class:`ServiceServer`.

    Not thread-safe: one client per thread (the soak suite opens one
    per producer).  Usable as a context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 30.0,
        sleeper=time.sleep,
    ):
        if port <= 0:
            raise ExecutionError(f"client needs a bound port, got {port}")
        self.host = host
        self.port = port
        self._sleep = sleeper
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise ExecutionError(
                f"cannot connect to service at {host}:{port}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    # The raw exchange
    # ------------------------------------------------------------------
    def request(self, op: str, **fields) -> dict:
        """Send one request line, read one reply line (raw dict —
        failure shapes included, nothing raised but transport errors)."""
        line = encode_line({"op": op, **fields})
        try:
            self._file.write(line)
            self._file.flush()
            reply = self._file.readline()
        except socket.timeout as exc:
            raise ExecutionError(
                f"service reply timed out after {self._sock.gettimeout()}s "
                f"(op={op!r})"
            ) from exc
        except OSError as exc:
            raise ExecutionError(
                f"service connection failed (op={op!r}): {exc}"
            ) from exc
        if not reply:
            raise ExecutionError(
                f"service closed the connection (op={op!r})"
            )
        return decode_line(reply)

    @staticmethod
    def _checked(reply: dict) -> dict:
        """Raise the typed exception for a failure reply."""
        if reply.get("ok"):
            return reply
        error = reply.get("error")
        if error == "overloaded":
            raise Overloaded(
                reply.get("reason", "rate_quota"),
                retry_after=float(reply.get("retry_after", 0.0)),
            )
        if error == "bad_request":
            raise BadRequest(str(reply.get("detail", "bad request")))
        raise ExecutionError(
            f"service request failed: {reply.get('detail', reply)}"
        )

    # ------------------------------------------------------------------
    # Typed ops
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self._checked(self.request("ping")).get("pong"))

    def shutdown(self) -> None:
        self._checked(self.request("shutdown"))

    def open(self, tenant: str, config: "dict | None" = None) -> dict:
        """Provision a tenant (idempotent); returns its effective
        config."""
        fields = {"tenant": tenant}
        if config is not None:
            fields["config"] = config
        return self._checked(self.request("open", **fields))["config"]

    def ingest(self, tenant: str, events) -> dict:
        """Push a batch of ``(ts, key, value)`` events; returns
        ``{"admitted": n, "watermark": w}``.  Raises
        :class:`Overloaded` when admission sheds the batch."""
        reply = self._checked(
            self.request(
                "ingest",
                tenant=tenant,
                events=[[int(t), int(k), float(v)] for t, k, v in events],
            )
        )
        return {
            "admitted": reply["admitted"],
            "watermark": reply["watermark"],
        }

    def register(
        self,
        tenant: str,
        query: str,
        name: str = "",
        scope: str = "per_key",
    ) -> str:
        reply = self._checked(
            self.request(
                "register", tenant=tenant, query=query, name=name,
                scope=scope,
            )
        )
        return reply["name"]

    def deregister(self, tenant: str, name: str) -> None:
        self._checked(self.request("deregister", tenant=tenant, name=name))

    def results(self, tenant: str, drain: bool = True) -> dict:
        """The tenant's merged results, deserialized back to
        ``{name: {Window: WindowResults}}`` (bit-identical to the
        server side)."""
        reply = self._checked(
            self.request("results", tenant=tenant, drain=drain)
        )
        return deserialize_results(reply["results"])

    def snapshot(self, tenant: str) -> dict:
        reply = self._checked(self.request("snapshot", tenant=tenant))
        return {"path": reply["path"], "watermark": reply["watermark"]}

    def stats(self, tenant: str) -> dict:
        reply = self._checked(self.request("stats", tenant=tenant))
        reply.pop("ok", None)
        return reply

    # ------------------------------------------------------------------
    # Bounded retries (overload-aware)
    # ------------------------------------------------------------------
    def with_retry(self, fn, policy: "RetryPolicy | None" = None):
        """Run ``fn()`` retrying :class:`Overloaded` sheds under a
        bounded :class:`RetryPolicy`, sleeping the larger of the
        policy's jittered backoff and the server's ``retry_after``
        quote.  ``BadRequest`` and ``failed`` are never retried; the
        final shed re-raises once the policy is exhausted."""
        policy = policy if policy is not None else RetryPolicy()
        delays = policy.delays()
        while True:
            try:
                return fn()
            except Overloaded as exc:
                try:
                    backoff = next(delays)
                except StopIteration:
                    raise exc from None  # policy exhausted: final shed
                self._sleep(max(backoff, exc.retry_after))

    def ingest_with_retry(
        self, tenant: str, events, policy: "RetryPolicy | None" = None
    ) -> dict:
        """:meth:`ingest`, retried through :meth:`with_retry` — the
        well-behaved producer loop the soak suite runs."""
        return self.with_retry(
            lambda: self.ingest(tenant, events), policy=policy
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
