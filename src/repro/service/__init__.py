"""The supervised multi-tenant session service (DESIGN.md §10).

This package turns the runtime's sessions into a *service*: a
:class:`SessionManager` owning many named tenant sessions behind
per-tenant admission control (token-bucket rate quotas, byte-weighed
queue budgets, circuit breakers) and supervision (checkpoint + tail
replay restore), fronted by a dependency-free asyncio JSON-lines TCP
server (:class:`ServiceServer`) and a blocking client
(:class:`ServiceClient`) with bounded, overload-aware retries.

The robustness contract, end to end:

* overload is **shed explicitly** (a structured ``overloaded`` reply
  with an honest ``retry_after``) — never silently dropped, never
  queued without bound;
* a dead tenant session is **restored** from its newest checkpoint
  plus a replayed op tail while every other tenant keeps streaming
  untouched (invariant 13, held bit-identically under seeded chaos);
* every retry anywhere is **bounded** — attempts, backoff cap, and
  wall deadline (:class:`RetryPolicy`), with seeded jitter.

See ``docs/service.md`` for the operator's tour and
``tests/service/`` for the contract as executable checks.
"""

from .client import ServiceClient
from .manager import (
    DEFAULT_CHECKPOINT_EVERY,
    SessionManager,
    TenantStats,
)
from .protocol import (
    BadRequest,
    Overloaded,
    decode_line,
    deserialize_results,
    encode_line,
    serialize_results,
)
from .quotas import (
    ServiceConfig,
    TenantConfig,
    TokenBucket,
    load_tenants_config,
    parse_simple_yaml,
)
from .server import ServiceServer, serve_in_thread
from .supervise import CircuitBreaker, RetryPolicy

__all__ = [
    "BadRequest",
    "CircuitBreaker",
    "DEFAULT_CHECKPOINT_EVERY",
    "Overloaded",
    "RetryPolicy",
    "ServiceClient",
    "ServiceConfig",
    "ServiceServer",
    "SessionManager",
    "TenantConfig",
    "TenantStats",
    "TokenBucket",
    "decode_line",
    "deserialize_results",
    "encode_line",
    "load_tenants_config",
    "parse_simple_yaml",
    "serialize_results",
    "serve_in_thread",
]
