"""Per-tenant admission control: token buckets, byte budgets, config.

The service's overload story (DESIGN.md §10) is *shed, never queue
unboundedly*: every tenant request passes two gates before it may touch
the tenant's session, and a request that fails either gate is answered
immediately with a structured ``overloaded`` reply carrying a
``retry_after`` hint — the client knows exactly when to come back, and
the server's memory stays bounded no matter how hard one tenant floods.

* :class:`TokenBucket` — the *rate* gate: a classic token bucket
  (``rate`` events/second refill, ``burst`` capacity) that never
  sleeps; it either admits atomically or quotes the wait.
* the *byte budget* gate lives in the manager: admitted-but-unapplied
  events are weighed at :data:`~repro.engine.events.EVENT_BYTES` per
  event against ``queue_budget_bytes``, bounding how much co-tenant
  traffic can pile up behind one slow session.

Both gates are deterministic given an injectable ``clock``, which is
what makes the soak and chaos suites assert *exact* admission counters
instead of sleeping and hoping.

Configuration is a ``tenants.yaml``-shaped file parsed by
:func:`load_tenants_config` — a dependency-free reader for the tiny
indentation-based subset the repo's config files need (the container
bakes in no YAML library, and neither a quota file nor a scenario
file needs one): nested mappings of scalars, block sequences,
comments, and blank lines.  JSON input is accepted too (any text
whose first non-space character is ``{``).  The scenario loader
(:mod:`repro.scenarios.schema`) reuses :func:`parse_simple_yaml`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, fields, replace
from pathlib import Path

from ..errors import ExecutionError

__all__ = [
    "ServiceConfig",
    "TenantConfig",
    "TokenBucket",
    "load_tenants_config",
    "parse_simple_yaml",
]


class TokenBucket:
    """A never-sleeping token bucket: admit atomically or quote a wait.

    ``rate`` tokens/second refill toward a ``burst`` capacity.
    :meth:`acquire` either deducts ``n`` tokens and returns ``None``
    (admitted) or — leaving the bucket untouched — returns the seconds
    until ``n`` tokens will exist: the ``retry_after`` the caller puts
    in its overloaded reply.  The bucket never blocks and holds no
    lock; the manager serializes calls under its per-tenant admission
    lock.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0:
            raise ExecutionError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ExecutionError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        self._stamp = now
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    @property
    def tokens(self) -> float:
        """Current token balance (refilled to now)."""
        self._refill()
        return self._tokens

    def acquire(self, n: int = 1) -> "float | None":
        """Try to take ``n`` tokens: ``None`` on success, else the
        seconds until ``n`` tokens will be available (``retry_after``).

        ``n`` may exceed ``burst``: such a request can *never* be
        admitted whole, so the quote is the time to fill the whole
        bucket — the client's cue to split the batch (the reply's
        ``retry_after`` is still finite and honest).
        """
        if n < 0:
            raise ExecutionError(f"cannot acquire {n} tokens")
        self._refill()
        if n <= self._tokens:
            self._tokens -= n
            return None
        deficit = min(float(n), self.burst) - self._tokens
        return max(deficit / self.rate, 1e-9)

    def drain(self) -> float:
        """Empty the bucket (the ``flood_tenant`` fault: a traffic
        burst compressed into an instant); returns the tokens taken."""
        self._refill()
        taken, self._tokens = self._tokens, 0.0
        return taken


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's quota and session shape.

    Quota knobs (the admission gates):

    * ``rate`` / ``burst`` — token-bucket refill (events/second) and
      capacity (events).
    * ``queue_budget_bytes`` — cap on admitted-but-unapplied bytes
      (events weigh :data:`~repro.engine.events.EVENT_BYTES` each);
      admissions beyond it shed with ``reason="queue_budget"``.

    Session knobs (what the manager builds on first touch):

    * ``num_keys`` / ``max_lateness`` / ``chunk_ticks`` — the stream
      shape, as in :class:`~repro.runtime.QuerySession`.
    * ``num_shards`` / ``backend`` — ``num_shards > 1`` builds a
      :class:`~repro.runtime.ShardedSession` on ``backend``.
    * ``checkpoint_every`` — auto-checkpoint cadence in ticks
      (``None`` inherits the manager's default); the cadence also
      bounds the supervisor's replay tail.
    """

    rate: float = 10_000.0
    burst: int = 4_096
    queue_budget_bytes: int = 1 << 20
    num_keys: int = 1
    max_lateness: int = 0
    chunk_ticks: "int | None" = None
    num_shards: int = 1
    backend: str = "serial"
    checkpoint_every: "int | None" = None

    def merged(self, overrides: "dict | None") -> "TenantConfig":
        """This config with ``overrides`` applied field-wise (unknown
        keys raise — a typo'd quota silently defaulting would be a
        production incident, not a convenience)."""
        if not overrides:
            return self
        known = {f.name for f in fields(TenantConfig)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ExecutionError(
                f"unknown tenant config key(s) {unknown}; expected a "
                f"subset of {sorted(known)}"
            )
        return replace(self, **overrides)


@dataclass(frozen=True)
class ServiceConfig:
    """Parsed ``tenants.yaml``: defaults plus per-tenant overrides."""

    defaults: TenantConfig
    tenants: "dict[str, TenantConfig]"

    def config_for(self, tenant: str) -> TenantConfig:
        """The effective config for one tenant (declared overrides on
        top of the defaults; undeclared tenants get the defaults)."""
        return self.tenants.get(tenant, self.defaults)


def _parse_scalar(text: str):
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    if len(text) >= 2 and text[0] == "[" and text[-1] == "]":
        inner = text[1:-1].strip()
        if not inner:
            return []
        items = _split_flow_items(inner)
        if items is not None:
            return [_parse_scalar(item) for item in items]
        return text
    lowered = text.lower()
    if lowered in ("null", "none", "~"):
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _split_flow_items(inner: str) -> "list[str] | None":
    """Split a flow-sequence body on top-level commas, honoring
    quotes; ``None`` when the body nests (``[``/``{``) or leaves a
    quote open — callers keep the raw text rather than guess."""
    items, start, i, n = [], 0, 0, len(inner)
    while i < n:
        ch = inner[i]
        if ch in "'\"":
            end = inner.find(ch, i + 1)
            if end < 0:
                return None
            i = end + 1
            continue
        if ch in "[{":
            return None
        if ch == ",":
            items.append(inner[start:i])
            start = i + 1
        i += 1
    items.append(inner[start:])
    return items


def parse_simple_yaml(text: str) -> dict:
    """Parse the tiny YAML subset the repo's config files need.

    Supported: arbitrarily nested mappings with scalar leaves, block
    sequences (``- item`` lines holding scalars or ``key: value``
    mappings — what a scenario file's query list needs), flat flow
    sequences of scalars (``["300/50", "120"]``), ``#`` comments
    (full-line or trailing), blank lines, single- or double-quoted
    strings, ints/floats/bools/null.  Not supported (raises, never
    guesses): flow mappings, nested flow sequences, anchors,
    multi-line scalars, tabs.  JSON is accepted as a fast path when
    the first non-space character is ``{``.
    """
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return json.loads(text)
    root: dict = {}
    # Stack of (indent, container) — a line's indent selects its
    # parent; containers are mappings or (for '- ' blocks) lists.
    stack: "list[tuple[int, dict | list]]" = [(-1, root)]
    pending: "tuple[int, str] | None" = None  # key awaiting its block
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw:
            raise ExecutionError(
                f"config line {lineno}: tabs are not allowed "
                "(indent with spaces)"
            )
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        indent = len(line) - len(line.lstrip(" "))
        body = line.strip()
        if body == "-" or body.startswith("- "):
            pending, stack = _resolve_pending(
                pending, stack, indent, as_list=True
            )
            # A dash pops everything deeper, and mappings at its own
            # indent, but never the list it appends to (which was
            # pushed at the dash column).
            while stack[-1][0] > indent or (
                stack[-1][0] == indent
                and not isinstance(stack[-1][1], list)
            ):
                stack.pop()
            target = stack[-1][1]
            if not isinstance(target, list) or stack[-1][0] != indent:
                raise ExecutionError(
                    f"config line {lineno}: misindented sequence item "
                    f"{body!r} (a '- ' block must open under a bare "
                    "'key:' line and keep one dash column)"
                )
            rest = body[1:].strip()
            if not rest:
                raise ExecutionError(
                    f"config line {lineno}: empty sequence item "
                    "(write the value on the dash line: '- value' or "
                    "'- key: value')"
                )
            if ":" in rest and not (
                rest[0] in "'\"" and rest[0] == rest[-1] and len(rest) >= 2
            ):
                # '- key: value' opens a mapping item; its remaining
                # keys sit two columns right of the dash, so the item
                # is pushed just past the dash column.
                item: dict = {}
                target.append(item)
                stack.append((indent + 1, item))
                key, _, value = rest.partition(":")
                if not value.strip():
                    pending = (indent + 2, key.strip())
                else:
                    item[key.strip()] = _parse_scalar(value)
            else:
                target.append(_parse_scalar(rest))
            continue
        if ":" not in body:
            raise ExecutionError(
                f"config line {lineno}: expected 'key: value' "
                f"or 'key:', got {body!r}"
            )
        key, _, value = body.partition(":")
        key = key.strip()
        pending, stack = _resolve_pending(pending, stack, indent)
        while indent <= stack[-1][0]:
            stack.pop()
        if isinstance(stack[-1][1], list):
            raise ExecutionError(
                f"config line {lineno}: mapping key {key!r} inside a "
                "sequence must belong to a '- key: value' item"
            )
        if not value.strip():
            pending = (indent, key)
        else:
            stack[-1][1][key] = _parse_scalar(value)
    if pending is not None:
        stack[-1][1][pending[1]] = {}
    return root


def _resolve_pending(pending, stack, indent, as_list: bool = False):
    """Close out a ``key:`` line once its first follower arrives: a
    deeper follower opens the key's block (mapping, or list when the
    follower is a ``- `` item), a same-or-shallower one leaves ``{}``.
    The stack records the *opening key's* indent for mappings (so
    siblings of the key pop it and deeper lines don't) and the *dash
    column* for lists (so every later dash finds its list)."""
    if pending is None:
        return None, stack
    pending_indent, pending_key = pending
    if indent > pending_indent:
        child: "dict | list" = [] if as_list else {}
        stack[-1][1][pending_key] = child
        stack.append((indent if as_list else pending_indent, child))
    else:
        stack[-1][1][pending_key] = {}
    return None, stack


def load_tenants_config(source: "str | Path | dict") -> ServiceConfig:
    """Load a ``tenants.yaml``-shaped quota config.

    ``source`` may be a path, raw text, or an already-parsed dict::

        defaults:
          rate: 5000          # events/second refill
          burst: 8192         # bucket capacity, in events
          queue_budget_bytes: 1048576
          num_keys: 64
        tenants:
          alice:
            rate: 1000        # overrides the default, field-wise
          bob:
            num_shards: 2

    Unknown top-level or tenant-level keys raise.
    """
    if isinstance(source, dict):
        data = source
    else:
        text = str(source)
        if isinstance(source, Path) or (
            "\n" not in text and (text.endswith((".yaml", ".yml", ".json")))
        ):
            text = Path(source).read_text()
        data = parse_simple_yaml(text)
    unknown = sorted(set(data) - {"defaults", "tenants"})
    if unknown:
        raise ExecutionError(
            f"unknown tenants config section(s) {unknown}; expected "
            "'defaults' and/or 'tenants'"
        )
    defaults = TenantConfig().merged(data.get("defaults") or {})
    tenants = {}
    for name, overrides in (data.get("tenants") or {}).items():
        if overrides is not None and not isinstance(overrides, dict):
            raise ExecutionError(
                f"tenant {name!r}: expected a mapping of overrides, "
                f"got {overrides!r}"
            )
        tenants[str(name)] = defaults.merged(overrides or {})
    return ServiceConfig(defaults=defaults, tenants=tenants)
