"""The asyncio JSON-lines TCP front door (dependency-free).

:class:`ServiceServer` is a deliberately thin pipe onto
:meth:`SessionManager.handle`: one connection at a time reads a line,
decodes it, runs the request on a bounded thread pool (the manager is
thread-safe; sessions hold the GIL-releasing numpy work), and writes
exactly one reply line.  All protocol semantics — admission control,
supervision, error shapes — live in the manager, which is what lets
the chaos suite drive the *same* code path in-process with
deterministic interleavings while this module only ever moves bytes.

Per connection, requests are strictly sequential (read → handle →
reply → read): replies can never reorder against their requests, and a
client gets natural backpressure on its own socket without the server
buffering more than one in-flight request per connection.  Concurrency
comes from *connections*, capped by ``max_workers`` handler threads —
the server's own memory stays bounded no matter how many clients pile
in, which is the transport half of the no-unbounded-queueing story
(the manager's byte budget is the admission half).

Two ops are served by the transport itself, not the manager:

* ``{"op": "ping"}`` → ``{"ok": true, "pong": true}`` — liveness.
* ``{"op": "shutdown"}`` → ``{"ok": true, "stopping": true}`` — stop
  the server loop (the manager is left to its owner to close).

``serve_in_thread`` / :meth:`ServiceServer.start` run the loop in a
daemon thread for tests and embedding; :meth:`ServiceServer.run`
blocks in the caller's thread for the CLI.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

from ..errors import ExecutionError
from .manager import SessionManager
from .protocol import BadRequest, decode_line, encode_line

__all__ = ["ServiceServer", "serve_in_thread"]


class ServiceServer:
    """Serve one :class:`SessionManager` over JSON-lines TCP.

    ``port=0`` (the default) binds an ephemeral port; read the bound
    address from :attr:`host` / :attr:`port` after :meth:`start` (or
    inside :meth:`run` via ``on_started``).  The server never closes
    the manager — its owner does — so a stopped server can be
    restarted on the same manager without losing tenant state.
    """

    def __init__(
        self,
        manager: SessionManager,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 8,
    ):
        self.manager = manager
        self.host = host
        self.port = port
        self.max_workers = max_workers
        self._thread: "threading.Thread | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stopping: "asyncio.Event | None" = None
        self._ready = threading.Event()
        self._startup_error: "BaseException | None" = None

    # ------------------------------------------------------------------
    # The event loop body
    # ------------------------------------------------------------------
    async def _amain(self, on_started=None) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        pool = ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="repro-service-handler",
        )
        try:
            server = await asyncio.start_server(
                lambda r, w: self._serve_connection(r, w, pool),
                host=self.host,
                port=self.port,
            )
        except OSError as exc:
            self._startup_error = ExecutionError(
                f"cannot bind service on {self.host}:{self.port}: {exc}"
            )
            self._ready.set()
            pool.shutdown(wait=False)
            return
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        if on_started is not None:
            on_started(self)
        try:
            async with server:
                await self._stopping.wait()
        finally:
            pool.shutdown(wait=True)

    async def _serve_connection(self, reader, writer, pool) -> None:
        loop = asyncio.get_running_loop()
        try:
            while not self._stopping.is_set():
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_line(line)
                except BadRequest as exc:
                    reply = {
                        "ok": False,
                        "error": "bad_request",
                        "detail": str(exc),
                    }
                else:
                    op = request.get("op")
                    if op == "ping":
                        reply = {"ok": True, "pong": True}
                    elif op == "shutdown":
                        reply = {"ok": True, "stopping": True}
                    else:
                        reply = await loop.run_in_executor(
                            pool, self.manager.handle, request
                        )
                writer.write(encode_line(reply))
                await writer.drain()
                if reply.get("stopping"):
                    self._stopping.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-exchange; nothing to clean up
        except asyncio.CancelledError:
            # The loop is tearing down (stop() while this client sat
            # idle in readline); end quietly so the cancellation does
            # not surface through streams' done-callback as a spurious
            # "exception in callback" log.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass

    # ------------------------------------------------------------------
    # Blocking entry point (CLI)
    # ------------------------------------------------------------------
    def run(self, on_started=None) -> None:
        """Serve in the calling thread until ``shutdown`` or
        :meth:`stop`; ``on_started(server)`` fires once the port is
        bound (the CLI prints the address from it)."""
        asyncio.run(self._amain(on_started=on_started))
        if self._startup_error is not None:
            raise self._startup_error

    # ------------------------------------------------------------------
    # Threaded entry point (tests, embedding)
    # ------------------------------------------------------------------
    def start(self) -> "ServiceServer":
        """Serve on a daemon thread; returns once the port is bound
        (raises if binding failed)."""
        if self._thread is not None:
            raise ExecutionError("service server already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._amain()),
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):  # pragma: no cover
            raise ExecutionError("service server failed to start in 30s")
        if self._startup_error is not None:
            self._thread.join(timeout=5)
            raise self._startup_error
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the loop and join the server thread (idempotent).
        The manager is *not* closed — it outlives the transport."""
        loop, stopping = self._loop, self._stopping
        if loop is not None and stopping is not None and loop.is_running():
            loop.call_soon_threadsafe(stopping.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():  # pragma: no cover - defensive
                raise ExecutionError("service server did not stop")
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(
    manager: SessionManager,
    host: str = "127.0.0.1",
    port: int = 0,
    max_workers: int = 8,
) -> ServiceServer:
    """Start a :class:`ServiceServer` on a daemon thread and return it
    (already bound; address on ``.host`` / ``.port``)."""
    return ServiceServer(
        manager, host=host, port=port, max_workers=max_workers
    ).start()
