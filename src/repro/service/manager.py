"""The supervised multi-tenant session manager (DESIGN.md §10).

:class:`SessionManager` owns many named tenant sessions
(:class:`~repro.runtime.QuerySession` or
:class:`~repro.runtime.ShardedSession`, per tenant config) and wraps
every operation on them in the service's robustness machinery:

**Admission control** (per tenant, under a fast admission lock that is
never held across session work):

1. circuit breaker — a tenant whose session keeps dying sheds with
   ``circuit_open`` instead of burning a restore cycle per request;
2. token bucket — ``rate``/``burst`` events/second; over-rate requests
   shed with ``rate_quota`` and an honest ``retry_after``;
3. byte budget — admitted-but-unapplied events are weighed at
   :data:`~repro.engine.events.EVENT_BYTES` against
   ``queue_budget_bytes``; what cannot fit sheds with
   ``queue_budget``.  This is the *no unbounded queueing* guarantee:
   the budget bounds the bytes (and so the threads) that can ever wait
   behind one tenant's session lock.

**Supervision** (per tenant, under the session lock): every applied
operation is first appended to a retained *tail*; the session
auto-checkpoints on its own cadence (``auto_checkpoint=``, shared with
the CLI) and the ``on_checkpoint`` hook truncates the tail.  When a
session dies mid-operation the supervisor closes the wreck, restores
the newest checkpoint (or rebuilds from scratch when none exists yet),
and replays the tail in order — the failed operation included, since
it was appended before it was attempted.  Recovery therefore loses
nothing past the last checkpoint plus tail, which is invariant 13's
bounded-downtime half; the per-tenant locks are its isolation half
(one tenant's death never touches another tenant's state, and the
chaos suite holds co-tenant results bit-identical under seeded kills).

**Determinism**: a :class:`~repro.runtime.faults.FaultPlan` with
service-level faults (``kill_session`` / ``stall_client`` /
``flood_tenant``) is consulted at the top of every tenant request, so
the whole layer is chaos-testable at exact request-stream points.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..engine.events import EVENT_BYTES
from ..errors import ExecutionError, ReproError
from ..runtime import CheckpointStore, QuerySession, ShardedSession
from ..runtime.core import resolve_registration_query
from ..runtime.faults import SERVICE_FAULT_KINDS
from .protocol import BadRequest, Overloaded, serialize_results
from .quotas import ServiceConfig, TenantConfig, TokenBucket
from .supervise import CircuitBreaker

__all__ = ["SessionManager", "TenantStats"]

#: Default auto-checkpoint cadence (ticks) when neither the manager
#: nor the tenant config names one.  Also bounds the replay tail.
DEFAULT_CHECKPOINT_EVERY = 512

#: Ops a tenant request may name.
TENANT_OPS = (
    "open",
    "ingest",
    "register",
    "deregister",
    "results",
    "snapshot",
    "stats",
)


@dataclass
class TenantStats:
    """Exact per-tenant admission and supervision counters.

    ``shed_*`` count *requests* shed at each gate (the request applied
    nothing); ``admitted_events`` counts events that passed admission;
    ``restores`` counts supervisor session rebuilds; ``replay_skipped``
    counts tail entries that failed again during a replay (a user-error
    op that also failed on the original timeline — skipped, never
    looped on); ``faults_injected`` counts service-level chaos faults
    fired against this tenant.
    """

    requests: int = 0
    admitted_events: int = 0
    shed_rate_quota: int = 0
    shed_queue_budget: int = 0
    shed_circuit_open: int = 0
    bad_requests: int = 0
    restores: int = 0
    replay_skipped: int = 0
    faults_injected: int = 0

    def as_dict(self) -> dict:
        return dict(vars(self))


class _DeadSession:
    """What a hard-killed tenant session is replaced with: every use
    fails like a real mid-request death (uniform for both session
    classes — ``QuerySession.close()`` alone would keep accepting
    synchronous pushes)."""

    def __init__(self, cause: str):
        self._cause = cause

    def __getattr__(self, name: str):
        raise ExecutionError(self._cause)


class _TenantState:
    """Everything the manager holds for one tenant.

    Two locks, by design: ``admission`` is the *fast* lock (breaker,
    bucket, pending-bytes — never held across session work), ``lock``
    is the *slow* per-session lock serializing apply/replay.  Overload
    decisions therefore stay O(1) even while the session is busy or
    mid-restore, which is what keeps one tenant's trouble from
    blocking another tenant's shed replies.
    """

    def __init__(
        self,
        name: str,
        config: TenantConfig,
        store: CheckpointStore,
        bucket: TokenBucket,
        breaker: CircuitBreaker,
    ):
        self.name = name
        self.config = config
        self.store = store
        self.bucket = bucket
        self.breaker = breaker
        self.admission = threading.Lock()
        self.lock = threading.RLock()
        self.stats = TenantStats()
        self.session = None
        self.tail: list = []
        self.pending_bytes = 0
        self.stall_seconds = 0.0
        self.auto_names = 0


class SessionManager:
    """Owns, protects, and supervises many named tenant sessions.

    Parameters
    ----------
    config:
        A :class:`~repro.service.quotas.ServiceConfig` (e.g. from
        :func:`~repro.service.quotas.load_tenants_config`), a dict in
        the same shape, or ``None`` for all-defaults.
    directory:
        Root for per-tenant checkpoint stores (``<dir>/<tenant>/``).
        ``None`` keeps checkpoints in a private temp dir cleaned up on
        :meth:`close`.
    checkpoint_every / keep:
        Manager-wide auto-checkpoint cadence (ticks) and per-tenant
        retention, overridable per tenant via ``checkpoint_every``.
    failure_threshold / reset_after:
        Circuit-breaker policy applied to every tenant.
    fault_plan:
        Deterministic service-level chaos
        (:class:`~repro.runtime.faults.FaultPlan`; consulted at the
        top of every tenant request).
    clock / sleeper:
        Injectable time sources (tests pin them; production defaults
        are ``time.monotonic`` / ``time.sleep``).
    """

    def __init__(
        self,
        config: "ServiceConfig | dict | None" = None,
        directory: "str | Path | None" = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        keep: int = 4,
        failure_threshold: int = 3,
        reset_after: float = 2.0,
        fault_plan=None,
        clock=time.monotonic,
        sleeper=time.sleep,
    ):
        if isinstance(config, dict):
            from .quotas import load_tenants_config

            config = load_tenants_config(config)
        self.config = config or ServiceConfig(TenantConfig(), {})
        self._tmpdir = None
        if directory is None:
            import tempfile

            self._tmpdir = tempfile.TemporaryDirectory(
                prefix="repro-service-"
            )
            directory = self._tmpdir.name
        self.directory = Path(directory)
        self.checkpoint_every = checkpoint_every
        self.keep = keep
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._fault_plan = fault_plan
        self._clock = clock
        self._sleep = sleeper
        self._tenants: "dict[str, _TenantState]" = {}
        self._registry = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------
    @property
    def tenants(self) -> "tuple[str, ...]":
        return tuple(self._tenants)

    def open_tenant(
        self, name: str, overrides: "dict | None" = None
    ) -> TenantConfig:
        """Create (or return) the named tenant's session; idempotent.

        The effective config is the service config's entry for the
        tenant with ``overrides`` applied field-wise.  Re-opening an
        existing tenant with *different* overrides raises — silently
        switching quotas mid-flight would make shed counters
        meaningless.
        """
        if not name or not isinstance(name, str):
            raise BadRequest("tenant name must be a non-empty string")
        with self._registry:
            self._require_open()
            state = self._tenants.get(name)
            try:
                cfg = self.config.config_for(name).merged(overrides)
            except ReproError as exc:  # unknown key — user input
                raise BadRequest(str(exc)) from exc
            if state is not None:
                if overrides and state.config != cfg:
                    raise BadRequest(
                        f"tenant {name!r} is already open with a "
                        "different config"
                    )
                return state.config
            every = (
                cfg.checkpoint_every
                if cfg.checkpoint_every is not None
                else self.checkpoint_every
            )
            store = CheckpointStore(
                self.directory / name, keep=self.keep, every=every
            )
            state = _TenantState(
                name=name,
                config=cfg,
                store=store,
                bucket=TokenBucket(cfg.rate, cfg.burst, clock=self._clock),
                breaker=CircuitBreaker(
                    self.failure_threshold,
                    self.reset_after,
                    clock=self._clock,
                ),
            )
            state.session = self._build_session(state, source=None)
            self._tenants[name] = state
        return cfg

    def _build_session(self, state: _TenantState, source):
        """Construct (``source=None``) or restore (``source=path``)
        one tenant session, wired to its store and tail hook.

        Tenant sessions are sync-ingest on purpose: the service's own
        byte budget is the front door, and a per-tenant pump queue
        would hold replayable events *outside* the tail — a crash
        would then lose them silently.  ShardedSession's worker-level
        ``worker_recovery`` stays available underneath via config
        backends; the supervisor here is the layer above it.
        """
        cfg = state.config
        on_checkpoint = lambda snap, path: state.tail.clear()  # noqa: E731
        meta = lambda: {"tenant": state.name}  # noqa: E731
        if cfg.num_shards > 1:
            if source is None:
                return ShardedSession(
                    num_keys=cfg.num_keys,
                    num_shards=cfg.num_shards,
                    backend=cfg.backend,
                    max_lateness=cfg.max_lateness,
                    chunk_ticks=cfg.chunk_ticks,
                    auto_checkpoint=state.store,
                    checkpoint_meta=meta,
                    on_checkpoint=on_checkpoint,
                )
            return ShardedSession.restore(
                source,
                backend=cfg.backend,
                auto_checkpoint=state.store,
                checkpoint_meta=meta,
                on_checkpoint=on_checkpoint,
            )
        if source is None:
            return QuerySession(
                num_keys=cfg.num_keys,
                max_lateness=cfg.max_lateness,
                chunk_ticks=cfg.chunk_ticks,
                auto_checkpoint=state.store,
                checkpoint_meta=meta,
                on_checkpoint=on_checkpoint,
            )
        return QuerySession.restore(
            source,
            auto_checkpoint=state.store,
            checkpoint_meta=meta,
            on_checkpoint=on_checkpoint,
        )

    def _tenant(self, name) -> _TenantState:
        if not isinstance(name, str) or not name:
            raise BadRequest("request needs a tenant name")
        state = self._tenants.get(name)
        if state is None:
            # Auto-open on first touch with the configured defaults —
            # the service-shaped ergonomics (a tenant is a name, not a
            # provisioning step).
            self.open_tenant(name)
            state = self._tenants[name]
        return state

    # ------------------------------------------------------------------
    # Chaos injection (deterministic, request-stream positioned)
    # ------------------------------------------------------------------
    def _consult_faults(self, state: _TenantState, op: str) -> None:
        plan = self._fault_plan
        if plan is None:
            return
        try:
            watermark = state.session.watermark
        except ExecutionError:
            watermark = None
        for fault in plan.take(
            "service", watermark=watermark, op=op, tenant=state.name
        ):
            state.stats.faults_injected += 1
            if fault.kind == "kill_session":
                self._kill(state, "session killed by injected fault")
            elif fault.kind == "stall_client":
                state.stall_seconds += fault.delay_seconds
            elif fault.kind == "flood_tenant":
                with state.admission:
                    state.bucket.drain()
            else:  # pragma: no cover - defensive
                raise ExecutionError(
                    f"fault kind {fault.kind!r} is not a service fault "
                    f"(expected one of {SERVICE_FAULT_KINDS})"
                )

    def _kill(self, state: _TenantState, cause: str) -> None:
        """Hard-kill one tenant's session: the live object is closed
        and replaced by a dead stub, so the in-flight request fails
        exactly like a real session death and the supervisor path
        takes over."""
        with state.lock:
            wreck = state.session
            state.session = _DeadSession(cause)
            try:
                wreck.close()
            except Exception:  # noqa: BLE001 - the wreck may be anything
                pass

    # ------------------------------------------------------------------
    # Supervision: restore + tail replay
    # ------------------------------------------------------------------
    def _recover(self, state: _TenantState, cause: Exception) -> list:
        """Bring one dead tenant session back (caller holds the
        session lock and has recorded the breaker failure); returns
        the ``(entry, detail)`` pairs that failed again on replay.

        Restores the newest checkpoint — or rebuilds from scratch when
        none exists yet — then replays the retained tail in order.
        Tail entries are re-appended through the same path as live
        ops, so a checkpoint that falls due *during* replay truncates
        correctly and the post-recovery tail is exactly
        ops-since-last-checkpoint again.
        """
        state.stats.restores += 1
        wreck = state.session
        state.session = None
        try:
            wreck.close()
        except Exception:  # noqa: BLE001 - already dead
            pass
        latest = state.store.latest()
        try:
            state.session = self._build_session(state, source=latest)
        except Exception as exc:
            # Recovery itself failed (e.g. an unreadable checkpoint).
            # Leave a stub that fails every use — the next request
            # retries recovery, and enough consecutive failures open
            # the breaker so the tenant sheds instead of thrashing.
            state.session = _DeadSession(
                f"tenant session is down (last restore failed: {exc}); "
                "recovery retries on the next request"
            )
            raise
        pending, state.tail = state.tail, []
        skipped: list = []
        for entry in pending:
            state.tail.append(entry)
            try:
                self._apply_entry(state.session, entry)
            except ExecutionError as exc:
                # The entry failed on a *freshly restored* session too:
                # it is the op's fault, not the session's (e.g. a user
                # error that slipped past validation).  Drop it from
                # the tail and count it — looping a poison op through
                # restore forever would be the one unbounded behavior
                # this layer must never have.  It stays counted (and
                # surfaced to its caller), never silent.
                state.stats.replay_skipped += 1
                state.tail.pop()
                skipped.append((entry, str(exc)))
        return skipped

    @staticmethod
    def _apply_entry(session, entry) -> None:
        kind = entry[0]
        if kind == "push":
            session.push(entry[1], entry[2], entry[3])
        elif kind == "register":
            session.register(entry[1], scope=entry[2])
        elif kind == "deregister":
            session.deregister(entry[1])
        elif kind == "drain":
            # Replay must reproduce the consumption (the original
            # drain's output already left the building).
            session.drain_results()
        else:  # pragma: no cover - defensive
            raise ExecutionError(f"unknown tail entry {kind!r}")

    def _guarded_apply(self, state: _TenantState, entry) -> None:
        """Append one op to the tail, then apply it; on session death,
        record the failure and run recovery (which re-applies it).  If
        the entry fails again on the fresh session the fault is the
        op's, and the caller gets a ``bad_request`` — never a silent
        success over a skipped op."""
        state.tail.append(entry)
        try:
            self._apply_entry(state.session, entry)
        except ExecutionError as exc:
            with state.admission:
                state.breaker.record_failure()
            skipped = self._recover(state, exc)
            for failed, detail in skipped:
                if failed is entry:
                    raise BadRequest(
                        f"operation failed on a freshly restored "
                        f"session (not a session fault): {detail}"
                    ) from exc

    def _breaker_gate(self, state: _TenantState) -> None:
        """Shed when the tenant's breaker is open.  Mutating ops
        (``ingest`` / ``register`` / ``deregister``) pass through
        here; reads (``results`` / ``snapshot`` / ``stats``) stay
        ungated on purpose — a tenant must be able to drain what it
        already computed and force a checkpoint even while its breaker
        is holding new work off a flapping session."""
        with state.admission:
            if not state.breaker.allow():
                state.stats.shed_circuit_open += 1
                raise Overloaded(
                    "circuit_open", retry_after=state.breaker.retry_after
                )

    def _stall_if_planned(self, state: _TenantState) -> None:
        if state.stall_seconds:
            seconds, state.stall_seconds = state.stall_seconds, 0.0
            self._sleep(seconds)

    # ------------------------------------------------------------------
    # Tenant operations
    # ------------------------------------------------------------------
    def ingest(self, tenant: str, events) -> dict:
        """Admit and apply one batch of ``(ts, key, value)`` events.

        Sheds (raising :class:`~repro.service.protocol.Overloaded`)
        before touching the session; validates before admitting (a
        malformed batch is a ``bad_request``, not a session death);
        applies under the session lock with supervision.
        """
        state = self._tenant(tenant)
        state.stats.requests += 1
        self._consult_faults(state, "ingest")
        events = self._validated_events(state, events)
        weight = len(events)
        nbytes = weight * EVENT_BYTES
        with state.admission:
            if not state.breaker.allow():
                state.stats.shed_circuit_open += 1
                raise Overloaded(
                    "circuit_open", retry_after=state.breaker.retry_after
                )
            retry = state.bucket.acquire(weight)
            if retry is not None:
                state.stats.shed_rate_quota += 1
                raise Overloaded("rate_quota", retry_after=retry)
            budget = state.config.queue_budget_bytes
            if state.pending_bytes + nbytes > budget:
                state.stats.shed_queue_budget += 1
                # Honest hint: the backlog drains at the bucket rate at
                # best, so quote the time to clear what is pending.
                backlog_events = state.pending_bytes / EVENT_BYTES
                raise Overloaded(
                    "queue_budget",
                    retry_after=max(
                        backlog_events / state.bucket.rate, 1e-3
                    ),
                )
            state.pending_bytes += nbytes
            state.stats.admitted_events += weight
        try:
            with state.lock:
                self._stall_if_planned(state)
                for ts, key, value in events:
                    self._guarded_apply(state, ("push", ts, key, value))
                watermark = state.session.watermark
            with state.admission:
                state.breaker.record_success()
        finally:
            with state.admission:
                state.pending_bytes -= nbytes
        return {"admitted": weight, "watermark": watermark}

    def _validated_events(self, state: _TenantState, events) -> list:
        if not isinstance(events, (list, tuple)):
            raise BadRequest("'events' must be a list of [ts, key, value]")
        num_keys = state.config.num_keys
        out = []
        for i, item in enumerate(events):
            try:
                ts, key, value = item
                ts, key, value = int(ts), int(key), float(value)
            except (TypeError, ValueError) as exc:
                raise BadRequest(
                    f"events[{i}]: expected [ts, key, value], got "
                    f"{item!r} ({exc})"
                ) from exc
            if not 0 <= key < num_keys:
                raise BadRequest(
                    f"events[{i}]: key {key} outside dense id space "
                    f"[0, {num_keys})"
                )
            out.append((ts, key, value))
        return out

    def register(
        self,
        tenant: str,
        query,
        name: str = "",
        scope: str = "per_key",
    ) -> str:
        """Register one query for a tenant; returns its name.

        The manager resolves the query (SQL parse + auto-naming)
        *before* anything enters the tail, so a bad query is a
        ``bad_request`` and a replayed tail never re-parses text.
        """
        state = self._tenant(tenant)
        state.stats.requests += 1
        self._consult_faults(state, "register")
        self._breaker_gate(state)
        if scope not in ("per_key", "global"):
            raise BadRequest(
                f"unknown scope {scope!r}; expected 'per_key' or 'global'"
            )
        def next_auto() -> str:
            state.auto_names += 1
            return f"q{state.auto_names}"

        try:
            resolved = resolve_registration_query(query, name, next_auto)
        except ReproError as exc:  # SQL errors included — user input
            raise BadRequest(f"cannot register query: {exc}") from exc
        with state.lock:
            self._stall_if_planned(state)
            try:
                live = state.session.queries
            except ExecutionError as exc:  # killed between requests
                with state.admission:
                    state.breaker.record_failure()
                self._recover(state, exc)
                live = state.session.queries
            if resolved.name in live:
                raise BadRequest(
                    f"query name {resolved.name!r} is already registered"
                )
            self._guarded_apply(state, ("register", resolved, scope))
            with state.admission:
                state.breaker.record_success()
        return resolved.name

    def deregister(self, tenant: str, name: str) -> None:
        state = self._tenant(tenant)
        state.stats.requests += 1
        self._consult_faults(state, "deregister")
        self._breaker_gate(state)
        with state.lock:
            self._stall_if_planned(state)
            try:
                live = state.session.queries
            except ExecutionError as exc:
                with state.admission:
                    state.breaker.record_failure()
                self._recover(state, exc)
                live = state.session.queries
            if name not in live:
                raise BadRequest(f"no registered query named {name!r}")
            self._guarded_apply(state, ("deregister", name))
            with state.admission:
                state.breaker.record_success()

    def results(self, tenant: str, drain: bool = True) -> dict:
        """A tenant's merged results (serialized, wire-shaped).

        ``drain=True`` (the default, and the bounded-memory service
        read path) consumes each subscription's emitted blocks; the
        consumption is tail-logged so a replayed timeline re-consumes
        identically.
        """
        state = self._tenant(tenant)
        state.stats.requests += 1
        self._consult_faults(state, "results")
        with state.lock:
            self._stall_if_planned(state)
            try:
                if drain:
                    state.tail.append(("drain",))
                    raw = state.session.drain_results()
                else:
                    raw = state.session.results()
            except ExecutionError as exc:
                with state.admission:
                    state.breaker.record_failure()
                if drain:
                    state.tail.pop()
                self._recover(state, exc)
                if drain:
                    state.tail.append(("drain",))
                    raw = state.session.drain_results()
                else:
                    raw = state.session.results()
            with state.admission:
                state.breaker.record_success()
        return serialize_results(raw)

    def snapshot(self, tenant: str) -> dict:
        """Checkpoint a tenant's session now (outside the cadence);
        truncates the replay tail like any checkpoint."""
        state = self._tenant(tenant)
        state.stats.requests += 1
        self._consult_faults(state, "snapshot")
        with state.lock:
            self._stall_if_planned(state)
            try:
                snap = state.session.snapshot(
                    meta={"tenant": state.name}
                )
            except ExecutionError as exc:
                with state.admission:
                    state.breaker.record_failure()
                self._recover(state, exc)
                snap = state.session.snapshot(meta={"tenant": state.name})
            path = state.store.save(snap)
            state.tail.clear()
            with state.admission:
                state.breaker.record_success()
        return {"path": str(path), "watermark": snap.watermark}

    def stats(self, tenant: str) -> dict:
        """Admission/supervision counters plus session introspection."""
        state = self._tenant(tenant)
        with state.lock:
            try:
                session_info = {
                    "watermark": state.session.watermark,
                    "queries": list(state.session.queries),
                }
            except ExecutionError:
                session_info = {"watermark": None, "queries": []}
        with state.admission:
            info = state.stats.as_dict()
            info["pending_bytes"] = state.pending_bytes
            info["breaker"] = state.breaker.state
            info["tail_length"] = len(state.tail)
        return {**session_info, "stats": info}

    # ------------------------------------------------------------------
    # Protocol dispatch (shared by the TCP server and in-process tests)
    # ------------------------------------------------------------------
    def handle(self, request: dict) -> dict:
        """One request dict in, one reply dict out — the entire
        protocol semantics, transport-free (the asyncio server is a
        thin pipe onto this; tests drive it directly for deterministic
        interleavings)."""
        try:
            op = request.get("op")
            if op not in TENANT_OPS:
                raise BadRequest(
                    f"unknown op {op!r}; expected one of {TENANT_OPS}"
                )
            self._require_open()
            tenant = request.get("tenant")
            if op == "open":
                cfg = self.open_tenant(tenant, request.get("config"))
                return {"ok": True, "tenant": tenant, "config": vars(cfg)}
            if op == "ingest":
                out = self.ingest(tenant, request.get("events"))
                return {"ok": True, **out}
            if op == "register":
                name = self.register(
                    tenant,
                    request.get("query", ""),
                    name=request.get("name", ""),
                    scope=request.get("scope", "per_key"),
                )
                return {"ok": True, "name": name}
            if op == "deregister":
                self.deregister(tenant, request.get("name", ""))
                return {"ok": True}
            if op == "results":
                payload = self.results(
                    tenant, drain=bool(request.get("drain", True))
                )
                return {"ok": True, "results": payload}
            if op == "snapshot":
                return {"ok": True, **self.snapshot(tenant)}
            return {"ok": True, **self.stats(tenant)}  # op == "stats"
        except Overloaded as exc:
            return {
                "ok": False,
                "error": "overloaded",
                "reason": exc.reason,
                "retry_after": round(exc.retry_after, 6),
            }
        except BadRequest as exc:
            return {"ok": False, "error": "bad_request", "detail": str(exc)}
        except ReproError as exc:
            return {"ok": False, "error": "failed", "detail": str(exc)}
        except Exception as exc:  # noqa: BLE001 - the reply must exist
            # A reply the client can parse beats a dead connection;
            # the detail names the class so the bug stays findable.
            return {
                "ok": False,
                "error": "failed",
                "detail": f"{type(exc).__name__}: {exc}",
            }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise ExecutionError("session manager is closed")

    def close(self) -> None:
        """Close every tenant session and release the checkpoint dir
        (idempotent; robust to already-dead sessions)."""
        with self._registry:
            if self._closed:
                return
            self._closed = True
            for state in self._tenants.values():
                with state.lock:
                    try:
                        state.session.close()
                    except Exception:  # noqa: BLE001 - dead is fine
                        pass
            if self._tmpdir is not None:
                self._tmpdir.cleanup()

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
