"""Supervision primitives: circuit breaker and bounded retries.

Two small, deterministic state machines the service composes around
every tenant session (DESIGN.md §10):

* :class:`CircuitBreaker` — after ``failure_threshold`` consecutive
  session failures the breaker *opens*: requests shed immediately
  (``reason="circuit_open"``) instead of burning a restore cycle per
  request against a session that keeps dying.  After ``reset_after``
  seconds it goes *half-open* and admits exactly one probe; the
  probe's outcome closes it or re-opens it for another window.
* :class:`RetryPolicy` — bounded exponential backoff with seeded
  jitter and an overall deadline, used by the client for control ops
  and honored ``retry_after`` hints.  Never retries forever, never
  synchronizes herds (jitter), never exceeds the deadline.

Both take an injectable ``clock`` (and the policy a seeded ``rng``) so
tests drive them deterministically — no sleeping, no flaking.
"""

from __future__ import annotations

import random
import time

from ..errors import ExecutionError

__all__ = ["CircuitBreaker", "RetryPolicy"]

#: Breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probes.

    Not thread-safe by itself — the manager calls it under the
    tenant's admission lock, which is also what makes the shed
    counters it feeds exact.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after: float = 2.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ExecutionError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after <= 0:
            raise ExecutionError(
                f"reset_after must be > 0, got {reset_after}"
            )
        self.failure_threshold = failure_threshold
        self.reset_after = float(reset_after)
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half_open`` (evaluated at now)."""
        self._tick()
        return self._state

    def _tick(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_after
        ):
            self._state = HALF_OPEN

    def allow(self) -> bool:
        """Whether a request may proceed.  In half-open, the first
        caller becomes the probe (subsequent callers are shed until
        its outcome is recorded)."""
        self._tick()
        if self._state == CLOSED:
            return True
        if self._state == HALF_OPEN:
            # Admit one probe; re-open pending its outcome so
            # concurrent callers shed instead of stampeding.
            self._state = OPEN
            self._opened_at = self._clock()
            return True
        return False

    @property
    def retry_after(self) -> float:
        """Seconds until the breaker next admits a probe."""
        self._tick()
        if self._state != OPEN:
            return 0.0
        return max(
            self.reset_after - (self._clock() - self._opened_at), 1e-9
        )

    def record_success(self) -> None:
        self._failures = 0
        self._state = CLOSED

    def record_failure(self) -> None:
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._state = OPEN
            self._opened_at = self._clock()


class RetryPolicy:
    """Bounded exponential backoff with seeded full jitter.

    ``delays()`` yields at most ``attempts - 1`` waits (the first
    attempt is free): attempt *k* waits ``uniform(0, min(cap, base *
    factor**k))`` seconds.  ``deadline`` (seconds from the first
    ``delays()`` call) caps the whole retry budget: a delay that would
    cross it is truncated, and once it is reached the generator stops
    — so a caller's worst case is bounded by wall clock, not just by
    attempt count.
    """

    def __init__(
        self,
        attempts: int = 5,
        base: float = 0.05,
        factor: float = 2.0,
        cap: float = 2.0,
        deadline: "float | None" = None,
        rng: "random.Random | None" = None,
        clock=time.monotonic,
    ):
        if attempts < 1:
            raise ExecutionError(f"attempts must be >= 1, got {attempts}")
        if base <= 0 or factor < 1 or cap < base:
            raise ExecutionError(
                f"need base > 0 <= cap and factor >= 1; got base={base}, "
                f"factor={factor}, cap={cap}"
            )
        self.attempts = attempts
        self.base = base
        self.factor = factor
        self.cap = cap
        self.deadline = deadline
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock

    def delays(self):
        """Yield the jittered wait before each retry (not the first
        attempt).  Stops at the attempt bound or the deadline,
        whichever comes first."""
        started = self._clock()
        for attempt in range(self.attempts - 1):
            ceiling = min(self.cap, self.base * self.factor**attempt)
            delay = self._rng.uniform(0.0, ceiling)
            if self.deadline is not None:
                remaining = self.deadline - (self._clock() - started)
                if remaining <= 0:
                    return
                delay = min(delay, remaining)
            yield delay
