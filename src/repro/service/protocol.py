"""The service wire protocol: JSON lines, explicit failure shapes.

One request per line, one reply per line, every line a single JSON
object — trivially debuggable with ``nc`` and dependency-free on both
ends.  Requests carry ``op`` and (for tenant ops) ``tenant``::

    {"op": "ingest", "tenant": "alice", "events": [[ts, key, value], ...]}

Replies always carry ``ok``.  The three failure shapes are part of the
robustness contract (DESIGN.md §10), not presentation:

* ``{"ok": false, "error": "overloaded", "reason": "rate_quota" |
  "queue_budget" | "circuit_open", "retry_after": <seconds>}`` —
  admission control *shed* the request.  Nothing was applied, nothing
  was queued; the client owns the retry (``retry_after`` is an honest
  quote, not a guess).
* ``{"ok": false, "error": "bad_request", "detail": ...}`` — the
  request itself is invalid (unknown op, malformed events, bad SQL,
  duplicate name).  Deterministic: retrying verbatim will fail again.
* ``{"ok": false, "error": "failed", "detail": ...}`` — the service
  could not complete the request (e.g. recovery itself failed).

Result payloads serialize :class:`~repro.runtime.results.WindowResults`
to plain lists; :func:`serialize_results` / :func:`deserialize_results`
round-trip them exactly (float64 values survive JSON bit-for-bit, which
is what lets the service suites assert *bit-identity* across the wire).
"""

from __future__ import annotations

import json

import numpy as np

from ..errors import ExecutionError
from ..runtime.results import WindowResults
from ..windows.window import Window

__all__ = [
    "BadRequest",
    "Overloaded",
    "decode_line",
    "deserialize_results",
    "encode_line",
    "serialize_results",
]

#: Shed reasons the ``overloaded`` reply may carry.
OVERLOAD_REASONS = ("rate_quota", "queue_budget", "circuit_open")


class Overloaded(ExecutionError):
    """Admission control shed a request; carries the retry hint."""

    def __init__(self, reason: str, retry_after: float):
        if reason not in OVERLOAD_REASONS:  # pragma: no cover - defensive
            raise ExecutionError(f"unknown overload reason {reason!r}")
        super().__init__(
            f"overloaded ({reason}); retry after {retry_after:.3f}s"
        )
        self.reason = reason
        self.retry_after = float(retry_after)


class BadRequest(ExecutionError):
    """The request is invalid as stated — retrying it cannot help."""


def encode_line(obj: dict) -> bytes:
    """One protocol line: compact JSON + newline."""
    return (
        json.dumps(obj, separators=(",", ":"), allow_nan=False).encode()
        + b"\n"
    )


def decode_line(line: "bytes | str") -> dict:
    """Parse one protocol line into a request/reply dict."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise BadRequest(f"malformed JSON line: {exc}") from exc
    if not isinstance(obj, dict):
        raise BadRequest(
            f"expected a JSON object per line, got {type(obj).__name__}"
        )
    return obj


def serialize_results(results: "dict[str, dict]") -> dict:
    """``{name: {window: WindowResults}}`` → JSON-able lists.

    Shape: ``{name: [{"window": [range, slide], "start_instance": i,
    "values": [[...], ...]}, ...]}``, windows sorted for a stable wire
    order.  float64 survives JSON exactly (repr round-trip), so the
    other end reconstructs bit-identical arrays.
    """
    out: dict = {}
    for name, by_window in results.items():
        blocks = []
        for window in sorted(
            by_window, key=lambda w: (w.range, w.slide)
        ):
            block = by_window[window]
            blocks.append(
                {
                    "window": [window.range, window.slide],
                    "start_instance": block.start_instance,
                    "values": block.values.tolist(),
                }
            )
        out[name] = blocks
    return out


def deserialize_results(
    payload: dict,
) -> "dict[str, dict[Window, WindowResults]]":
    """Inverse of :func:`serialize_results` (client-side)."""
    out: dict = {}
    for name, blocks in payload.items():
        by_window: dict = {}
        for block in blocks:
            window = Window(*block["window"])
            values = np.asarray(block["values"], dtype=np.float64)
            if values.ndim == 1:  # zero-instance block
                values = values.reshape(values.shape[0], 0)
            start = int(block["start_instance"])
            by_window[window] = WindowResults(
                query=name,
                window=window,
                start_instance=start,
                frontier=start + values.shape[1],
                values=values,
            )
        out[name] = by_window
    return out
