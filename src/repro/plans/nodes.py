"""Logical query-plan nodes.

A plan is a DAG of operators mirroring the paper's Figure 2:
``Source → MultiCast → WindowAggregate ... → Union``.  Window-aggregate
operators may read raw events or the sub-aggregates of another
window-aggregate operator — the capability the whole optimization
rests on.

Nodes are immutable once built; plans are assembled by the builders in
:mod:`repro.plans.builder` and :mod:`repro.core.rewrite`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..aggregates.base import AggregateFunction
from ..errors import PlanError
from ..windows.coverage import CoverageSemantics
from ..windows.window import Window


@dataclass(frozen=True)
class PlanNode:
    """Base class: a numbered operator with input operators."""

    node_id: int
    inputs: tuple["PlanNode", ...] = field(default=())

    @property
    def kind(self) -> str:
        return type(self).__name__.removesuffix("Node").lower()

    def iter_subtree(self) -> Iterator["PlanNode"]:
        """Depth-first iteration over this node and its inputs (deduped)."""
        seen: set[int] = set()
        stack: list[PlanNode] = [self]
        while stack:
            node = stack.pop()
            if node.node_id in seen:
                continue
            seen.add(node.node_id)
            yield node
            stack.extend(node.inputs)


@dataclass(frozen=True)
class SourceNode(PlanNode):
    """The input event stream (``Input TIMESTAMP BY ...`` in ASA)."""

    name: str = "Input"


@dataclass(frozen=True)
class MulticastNode(PlanNode):
    """Replicates its single input to several consumers (Trill
    ``Multicast``)."""

    def __post_init__(self) -> None:
        if len(self.inputs) != 1:
            raise PlanError("MulticastNode requires exactly one input")


@dataclass(frozen=True)
class WindowAggregateNode(PlanNode):
    """Aggregate over one window, from raw events or sub-aggregates.

    ``provider`` is the upstream *window* whose sub-aggregates this node
    consumes (``None`` = raw events).  ``is_factor`` marks auxiliary
    factor windows whose output is not exposed to the user.
    """

    window: Window = None  # type: ignore[assignment]
    aggregate: AggregateFunction = None  # type: ignore[assignment]
    provider: "Window | None" = None
    is_factor: bool = False

    def __post_init__(self) -> None:
        if self.window is None or self.aggregate is None:
            raise PlanError("WindowAggregateNode needs a window and aggregate")
        if len(self.inputs) != 1:
            raise PlanError("WindowAggregateNode requires exactly one input")

    @property
    def reads_raw(self) -> bool:
        return self.provider is None


@dataclass(frozen=True)
class UnionNode(PlanNode):
    """Merges the result streams of all user-facing windows."""

    def __post_init__(self) -> None:
        if not self.inputs:
            raise PlanError("UnionNode requires at least one input")


@dataclass
class LogicalPlan:
    """A complete window-aggregate query plan.

    Attributes
    ----------
    root:
        The plan output (a :class:`UnionNode`, or a single aggregate
        node for one-window queries).
    source:
        The unique input stream node.
    aggregate / semantics:
        The aggregate function and, when rewritten, the coverage
        semantics used.  ``semantics`` is ``None`` for original plans.
    description:
        Short label used in reports (``"original"``,
        ``"rewritten"``, ``"rewritten+factors"``).
    """

    root: PlanNode
    source: SourceNode
    aggregate: AggregateFunction
    semantics: "CoverageSemantics | None" = None
    description: str = "original"

    def nodes(self) -> tuple[PlanNode, ...]:
        """All nodes, deterministic order (by node id)."""
        return tuple(sorted(self.root.iter_subtree(), key=lambda n: n.node_id))

    def window_nodes(self) -> tuple[WindowAggregateNode, ...]:
        return tuple(
            n for n in self.nodes() if isinstance(n, WindowAggregateNode)
        )

    def user_window_nodes(self) -> tuple[WindowAggregateNode, ...]:
        return tuple(n for n in self.window_nodes() if not n.is_factor)

    def factor_window_nodes(self) -> tuple[WindowAggregateNode, ...]:
        return tuple(n for n in self.window_nodes() if n.is_factor)

    @property
    def windows(self) -> tuple[Window, ...]:
        return tuple(n.window for n in self.window_nodes())

    @property
    def user_windows(self) -> tuple[Window, ...]:
        return tuple(n.window for n in self.user_window_nodes())

    def provider_map(self) -> "dict[Window, Window | None]":
        """window → provider window (``None`` = raw input)."""
        return {n.window: n.provider for n in self.window_nodes()}

    def node_for(self, window: Window) -> WindowAggregateNode:
        for node in self.window_nodes():
            if node.window == window:
                return node
        raise PlanError(f"{window} has no aggregate node in this plan")

    def depth_of(self, window: Window) -> int:
        """Number of sub-aggregate hops between raw input and ``window``."""
        depth = 0
        node = self.node_for(window)
        while node.provider is not None:
            node = self.node_for(node.provider)
            depth += 1
            if depth > len(self.window_nodes()):
                raise PlanError("provider chain contains a cycle")
        return depth

    def topological_window_order(self) -> tuple[WindowAggregateNode, ...]:
        """Window nodes ordered providers-first (ready for execution)."""
        return tuple(
            sorted(self.window_nodes(), key=lambda n: self.depth_of(n.window))
        )
