"""Logical query plans: nodes, builders, renderers, validation."""

from .builder import PlanBuilder, original_plan
from .nodes import (
    LogicalPlan,
    MulticastNode,
    PlanNode,
    SourceNode,
    UnionNode,
    WindowAggregateNode,
)
from .render import physical_path, physical_paths, to_flink, to_tree, to_trill
from .validate import validate_plan

__all__ = [
    "LogicalPlan",
    "MulticastNode",
    "PlanBuilder",
    "PlanNode",
    "SourceNode",
    "UnionNode",
    "WindowAggregateNode",
    "original_plan",
    "physical_path",
    "physical_paths",
    "to_flink",
    "to_tree",
    "to_trill",
    "validate_plan",
]
