"""Plan renderers: Trill-style expressions, Flink DataStream-style
expressions, and an ASCII tree.

These reproduce the translations shown in Figure 2(b)/(c) of the paper
and described for Flink in Section V-F.  They are purely cosmetic —
useful for examples, docs, and eyeballing rewrites — and therefore
favour readability over exact C#/Java syntax.
"""

from __future__ import annotations

import math

from ..windows.coverage import covering_multiplier
from ..windows.units import format_duration
from ..windows.window import Window
from .nodes import (
    LogicalPlan,
    MulticastNode,
    PlanNode,
    SourceNode,
    UnionNode,
    WindowAggregateNode,
)


def physical_path(node: WindowAggregateNode, engine: str) -> str:
    """Describe the physical operator ``engine`` uses for ``node``.

    The pane math is duplicated from :mod:`repro.engine.panes`
    (``p = gcd(r, s)``) rather than imported, keeping ``plans`` free of
    an engine dependency; DESIGN.md §5 documents the path taxonomy.
    """
    window = node.window
    if node.provider is not None:
        multiplier = covering_multiplier(window, node.provider)
        return f"subagg-gather[M={multiplier}]"
    if not node.aggregate.mergeable:
        if engine == "columnar-panes-native":
            return "raw-segmented-scan[holistic, native-kernel]"
        return "raw-segmented-scan[holistic]"
    if engine in ("columnar-panes", "columnar-panes-native", "streaming-chunked"):
        pane = math.gcd(window.range, window.slide)
        suffix = ", native-kernel" if engine == "columnar-panes-native" else ""
        return f"panes[p={pane}, r/p={window.range // pane}{suffix}]"
    if engine == "streaming":
        return f"event-loop[k={window.range // window.slide}]"
    return f"raw-materialize[k={window.range // window.slide}]"


def physical_paths(
    plan: LogicalPlan, engine: str
) -> "dict[Window, str]":
    """window → physical-path description for every aggregate node."""
    return {
        node.window: physical_path(node, engine)
        for node in plan.window_nodes()
    }


def shard_merge_description(aggregate) -> str:
    """The coordinator's merge step for ``aggregate`` (DESIGN.md §7).

    Single source of truth for the merge-mode wording — the plan tree
    header and ``core.explain`` both render it, and they must never
    drift apart.
    """
    if not aggregate.mergeable:
        return "per-key rows concatenate; global reads raw-forward"
    return "per-key rows concatenate; global partials combine"


def resolve_shards(shards):
    """Normalize a ``shards=`` annotation argument.

    Accepts the historical plain fan-out count, or a live
    :class:`~repro.runtime.ShardedSession` (anything exposing
    ``num_shards`` and ``shard_loads()``), in which case the session's
    decayed per-shard load counters ride along for rendering.
    Returns ``(count, loads_or_None)``.
    """
    if shards is None or isinstance(shards, int):
        return shards, None
    return shards.num_shards, shards.shard_loads()


def shard_load_lines(loads: dict, indent: str = "  ") -> list[str]:
    """Render decayed per-shard load counters (DESIGN.md §12).

    One line per shard: decayed event/byte load, the slot count it
    owns, and its key count — the same numbers ``rebalance()`` greedily
    balances, so a skewed table here is the signal to migrate.
    """
    total = sum(entry["events"] for entry in loads.values())
    lines = []
    for shard in sorted(loads):
        entry = loads[shard]
        share = entry["events"] / total if total else 0.0
        lines.append(
            f"{indent}shard {shard}: load {entry['events']:.1f} ev"
            f" ({share:.0%}), {entry['bytes']:.0f} B, "
            f"{int(entry['slots'])} slots, {int(entry['keys'])} keys"
        )
    return lines


def shard_fanout(plan: LogicalPlan, shards: int) -> str:
    """One-line description of how ``plan`` fans out over key shards.

    The sharded runtime (DESIGN.md §7) replicates the *whole* plan on
    every shard over a disjoint key slice; what differs per aggregate
    is only the coordinator's merge step, which this line names.
    """
    aggregate = next(iter(plan.window_nodes())).aggregate
    return (
        f"x{shards} key-hash shards (plan replicated per shard; "
        f"{shard_merge_description(aggregate)})"
    )


def _window_call(window: Window, style: str) -> str:
    if style == "trill":
        if window.is_tumbling:
            return f".Tumbling({window.range})"
        return f".Hopping({window.range}, {window.slide})"
    # Flink DataStream API style.
    if window.is_tumbling:
        return f".window(TumblingEventTimeWindows.of({window.range}))"
    return (
        f".window(SlidingEventTimeWindows.of({window.range}, {window.slide}))"
    )


def _aggregate_call(node: WindowAggregateNode, style: str) -> str:
    label = node.window.label
    func = node.aggregate.name.capitalize()
    origin = "" if node.reads_raw else "  /* from sub-aggregates */"
    if style == "trill":
        tag = "Factor" if node.is_factor else "GroupAggregate"
        return f".{tag}('{label}', w => w.{func}(e => e.V)){origin}"
    suffix = ".name(\"factor\")" if node.is_factor else ""
    return f".aggregate(new {func}Aggregate()){suffix}{origin}"


def to_trill(plan: LogicalPlan) -> str:
    """Render ``plan`` as a Trill-style expression (Figure 2(b)/(c))."""
    return _render_expression(plan, style="trill")


def to_flink(plan: LogicalPlan) -> str:
    """Render ``plan`` as a Flink DataStream-style expression (§V-F)."""
    return _render_expression(plan, style="flink")


def _render_expression(plan: LogicalPlan, style: str) -> str:
    lines: list[str] = []
    counters = {"n": 0}

    def fresh(prefix: str) -> str:
        counters["n"] += 1
        return f"{prefix}{counters['n']}"

    names: dict[int, str] = {}

    def emit(node: PlanNode) -> str:
        if node.node_id in names:
            return names[node.node_id]
        if isinstance(node, SourceNode):
            names[node.node_id] = node.name
            return node.name
        if isinstance(node, MulticastNode):
            upstream = emit(node.inputs[0])
            var = fresh("s")
            if style == "trill":
                lines.append(f"var {var} = {upstream}.Multicast();")
            else:
                lines.append(f"DataStream {var} = {upstream};  // multicast")
            names[node.node_id] = var
            return var
        if isinstance(node, WindowAggregateNode):
            upstream = emit(node.inputs[0])
            var = fresh("w")
            call = _window_call(node.window, style) + _aggregate_call(
                node, style
            )
            prefix = "var" if style == "trill" else "DataStream"
            lines.append(f"{prefix} {var} = {upstream}{call};")
            names[node.node_id] = var
            return var
        if isinstance(node, UnionNode):
            parts = [emit(child) for child in node.inputs]
            var = fresh("u")
            head, *rest = parts
            chain = "".join(f".Union({p})" for p in rest)
            prefix = "var" if style == "trill" else "DataStream"
            if style == "flink":
                chain = "".join(f".union({p})" for p in rest)
            lines.append(f"{prefix} {var} = {head}{chain};")
            names[node.node_id] = var
            return var
        raise TypeError(f"unknown plan node {node!r}")  # pragma: no cover

    result = emit(plan.root)
    lines.append(f"return {result};")
    return "\n".join(lines)


def to_tree(
    plan: LogicalPlan,
    engine: "str | None" = None,
    shards: "int | object | None" = None,
) -> str:
    """ASCII tree of the plan, root at the top (Figure 2(a) style).

    With ``engine`` given, each aggregate line is annotated with the
    physical execution path that engine would use (``via panes[...]``,
    ``via subagg-gather[...]``, ...).  With ``shards`` given — a
    fan-out count or a live :class:`~repro.runtime.ShardedSession` —
    the header is annotated with the key-shard fan-out the sharded
    runtime would execute the plan under (DESIGN.md §7); a session
    additionally contributes its decayed per-shard load counters
    (DESIGN.md §12).
    """
    shards, loads = resolve_shards(shards)
    header = f"[{plan.description}]"
    if engine is not None:
        header += f" engine={engine}"
    if shards is not None:
        header += f" shards={shards}"
    lines: list[str] = [header]
    if shards is not None:
        lines.append(f"  fan-out: {shard_fanout(plan, shards)}")
    if loads is not None:
        lines.extend(shard_load_lines(loads))

    def label(node: PlanNode) -> str:
        if isinstance(node, SourceNode):
            return f"Source({node.name})"
        if isinstance(node, MulticastNode):
            return "MultiCast"
        if isinstance(node, WindowAggregateNode):
            window = node.window
            dur = format_duration(window.range)
            if not window.is_tumbling:
                dur += f" every {format_duration(window.slide)}"
            origin = "raw" if node.reads_raw else f"from {node.provider.label}"
            tag = " (factor)" if node.is_factor else ""
            physical = (
                "" if engine is None
                else f" via {physical_path(node, engine)}"
            )
            return (
                f"Agg[{node.aggregate.name} over {dur}] <- {origin}{tag}"
                f"{physical}"
            )
        if isinstance(node, UnionNode):
            return "Union"
        return node.kind  # pragma: no cover

    def walk(node: PlanNode, indent: int) -> None:
        lines.append("  " * indent + label(node))
        for child in node.inputs:
            walk(child, indent + 1)

    walk(plan.root, 0)
    return "\n".join(lines)
