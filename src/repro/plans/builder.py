"""Construction of original (unoptimized) query plans.

The original plan evaluates the aggregate over each window
independently: ``Input → MultiCast → {Agg_W1, ..., Agg_Wn} → Union``
(Figure 2(a), left).
"""

from __future__ import annotations

import itertools
from typing import Iterable

from ..aggregates.base import AggregateFunction
from ..errors import PlanError
from ..windows.window import Window, WindowSet
from .nodes import (
    LogicalPlan,
    MulticastNode,
    PlanNode,
    SourceNode,
    UnionNode,
    WindowAggregateNode,
)


class PlanBuilder:
    """Allocates node ids and assembles plan nodes."""

    def __init__(self, source_name: str = "Input"):
        self._ids = itertools.count(1)
        self.source = SourceNode(node_id=next(self._ids), name=source_name)

    def multicast(self, upstream: PlanNode) -> MulticastNode:
        return MulticastNode(node_id=next(self._ids), inputs=(upstream,))

    def window_aggregate(
        self,
        window: Window,
        aggregate: AggregateFunction,
        upstream: PlanNode,
        provider: "Window | None" = None,
        is_factor: bool = False,
    ) -> WindowAggregateNode:
        return WindowAggregateNode(
            node_id=next(self._ids),
            inputs=(upstream,),
            window=window,
            aggregate=aggregate,
            provider=provider,
            is_factor=is_factor,
        )

    def union(self, inputs: Iterable[PlanNode]) -> UnionNode:
        return UnionNode(node_id=next(self._ids), inputs=tuple(inputs))


def original_plan(
    windows: "WindowSet | Iterable[Window]",
    aggregate: AggregateFunction,
    source_name: str = "Input",
) -> LogicalPlan:
    """Build the default plan: each window aggregates raw events."""
    window_list = list(windows)
    if not window_list:
        raise PlanError("cannot build a plan for an empty window set")
    builder = PlanBuilder(source_name)
    if len(window_list) == 1:
        upstream: PlanNode = builder.source
    else:
        upstream = builder.multicast(builder.source)
    agg_nodes = [
        builder.window_aggregate(window, aggregate, upstream)
        for window in window_list
    ]
    if len(agg_nodes) == 1:
        root: PlanNode = agg_nodes[0]
    else:
        root = builder.union(agg_nodes)
    return LogicalPlan(
        root=root,
        source=builder.source,
        aggregate=aggregate,
        semantics=None,
        description="original",
    )
