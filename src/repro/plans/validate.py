"""Structural validation of logical plans.

Checks the invariants any engine executing a plan relies on.  Raising
early with a precise message beats a cryptic failure deep inside an
engine.
"""

from __future__ import annotations

from ..errors import PlanError
from ..windows.coverage import CoverageSemantics, relates
from .nodes import (
    LogicalPlan,
    MulticastNode,
    SourceNode,
    UnionNode,
    WindowAggregateNode,
)


def validate_plan(plan: LogicalPlan) -> None:
    """Validate ``plan``; raises :class:`PlanError` on the first defect.

    Invariants checked:

    1. exactly one source node, reachable from the root;
    2. every window appears in exactly one aggregate node;
    3. provider references match the actual upstream aggregate node;
    4. provider chains are acyclic;
    5. sub-aggregate edges respect the plan's coverage semantics and
       the aggregate's merge capability;
    6. every non-factor window's results reach the root; no factor
       window's results do.
    """
    nodes = plan.nodes()

    sources = [n for n in nodes if isinstance(n, SourceNode)]
    if len(sources) != 1:
        raise PlanError(f"plan must have exactly one source, found {len(sources)}")
    if sources[0] != plan.source:
        raise PlanError("plan.source is not the reachable source node")

    window_nodes = plan.window_nodes()
    windows = [n.window for n in window_nodes]
    if len(set(windows)) != len(windows):
        raise PlanError("a window appears in more than one aggregate node")
    if not window_nodes:
        raise PlanError("plan contains no window aggregate nodes")

    by_window = {n.window: n for n in window_nodes}
    for node in window_nodes:
        _check_provider(plan, node, by_window)
        plan.depth_of(node.window)  # raises on provider cycles

    _check_union_membership(plan)


def _check_provider(plan, node: WindowAggregateNode, by_window) -> None:
    upstream = node.inputs[0]
    while isinstance(upstream, MulticastNode):
        upstream = upstream.inputs[0]
    if node.provider is None:
        if not isinstance(upstream, SourceNode):
            raise PlanError(
                f"{node.window} claims raw input but reads from {upstream.kind}"
            )
        return
    if node.provider not in by_window:
        raise PlanError(
            f"{node.window} reads from {node.provider}, which has no node"
        )
    if not isinstance(upstream, WindowAggregateNode) or (
        upstream.window != node.provider
    ):
        raise PlanError(
            f"{node.window}'s input does not come from its provider "
            f"{node.provider}"
        )
    if not node.aggregate.mergeable:
        raise PlanError(
            f"holistic aggregate {node.aggregate.name} cannot read "
            f"sub-aggregates for {node.window}"
        )
    # Soundness is determined by the actual coverage relation, not the
    # plan's declared semantics: a partitioned edge is sound for every
    # mergeable aggregate (Theorem 5); a merely-covered edge is sound
    # only for overlap-safe aggregates (Theorem 6).
    if relates(node.window, node.provider, CoverageSemantics.PARTITIONED_BY):
        return
    if relates(node.window, node.provider, CoverageSemantics.COVERED_BY):
        if node.aggregate.supports_overlapping_merge:
            return
        raise PlanError(
            f"{node.window} is only covered (not partitioned) by "
            f"{node.provider}, and {node.aggregate.name} does not merge "
            "over overlapping partitions"
        )
    raise PlanError(
        f"{node.window} is not covered by {node.provider}; "
        "the sub-aggregate edge is unsound"
    )


def _check_union_membership(plan: LogicalPlan) -> None:
    root = plan.root
    if isinstance(root, UnionNode):
        exposed = set()
        for child in root.inputs:
            while isinstance(child, MulticastNode):
                child = child.inputs[0]
            if not isinstance(child, WindowAggregateNode):
                raise PlanError("union inputs must be window aggregates")
            exposed.add(child.window)
    elif isinstance(root, (WindowAggregateNode, MulticastNode)):
        child = root
        while isinstance(child, MulticastNode):
            child = child.inputs[0]
        exposed = {child.window}
    else:
        raise PlanError(f"unexpected plan root {root.kind}")

    for node in plan.window_nodes():
        if node.is_factor and node.window in exposed:
            raise PlanError(
                f"factor window {node.window} must not reach the union"
            )
        if not node.is_factor and node.window not in exposed:
            raise PlanError(
                f"user window {node.window} does not reach the union"
            )
