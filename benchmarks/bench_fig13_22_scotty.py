"""Figures 13 and 22: comparison with window slicing (Scotty).

Three series per panel: the default plan ("Flink"), the eager-slicing
baseline ("Scotty"), and our factor-window plans.  Paper shape: both
Scotty and factor windows beat the default plan decisively; factor
windows match Scotty and often exceed it (paper: up to 5.7×), because
slicing re-assembles every window from the shared slice store while
factor-window plans reuse whole sub-aggregate streams across windows.
"""

import pytest

from repro.aggregates.registry import MIN
from repro.bench.experiments import scotty_comparison
from repro.core.optimizer import optimize
from repro.core.rewrite import rewrite_plan
from repro.engine.executor import execute_plan
from repro.plans.builder import original_plan
from repro.slicing.slicer import execute_sliced
from repro.workloads.generators import SequentialGen
from conftest import BENCH_EVENTS, BENCH_RUNS


@pytest.mark.parametrize("variant", ["flink", "scotty", "factor-windows"])
def test_fig13_variant_throughput(benchmark, synthetic_stream, variant):
    windows = SequentialGen().generate(10, tumbling=True, seed=101)
    if variant == "flink":
        plan = original_plan(windows, MIN)
        result = benchmark(execute_plan, plan, synthetic_stream)
        benchmark.extra_info["pairs"] = result.stats.total_pairs
    elif variant == "scotty":
        result = benchmark(execute_sliced, windows, MIN, synthetic_stream)
        benchmark.extra_info["pairs"] = result.stats.total_pairs
    else:
        optimized = optimize(windows, MIN)
        plan = rewrite_plan(optimized.with_factors, MIN)
        result = benchmark(execute_plan, plan, synthetic_stream)
        benchmark.extra_info["pairs"] = result.stats.total_pairs


def _report(set_size, runs):
    panels = scotty_comparison(
        set_size=set_size, events=BENCH_EVENTS, runs=runs
    )
    return "\n\n".join(p.render(include_scotty=True) for p in panels)


def test_fig13_report(benchmark, report_sink):
    text = benchmark.pedantic(
        lambda: _report(10, BENCH_RUNS), rounds=1, iterations=1
    )
    report_sink("fig13_scotty_w10", "Figure 13 (|W|=10)\n" + text)


def test_fig22_report(benchmark, report_sink):
    text = benchmark.pedantic(
        lambda: _report(5, BENCH_RUNS), rounds=1, iterations=1
    )
    report_sink("fig22_scotty_w5", "Figure 22 (|W|=5)\n" + text)
