"""Figure 11: throughput on Synthetic-10M window sets, |W| = 5.

Four panels — RandomGen/SequentialGen × partitioned-by (tumbling
window sets) / covered-by (hopping) — each comparing the original
plan, the rewritten plan without factor windows, and the plan with
factor windows.  The paper's shape to reproduce: rewritten > original
everywhere; factor-window plans highest, especially for SequentialGen
(Table I reports up to 2.5×/4.3× for RandomGen and 4.8× for
SequentialGen at |W| = 5).
"""

import pytest

from repro.aggregates.registry import MIN
from repro.bench.experiments import run_panel
from repro.core.optimizer import optimize
from repro.core.rewrite import rewrite_plan
from repro.engine.executor import execute_plan
from repro.plans.builder import original_plan
from repro.windows.coverage import CoverageSemantics
from repro.workloads.generators import RandomGen, SequentialGen

SET_SIZE = 5


def _windows(generator: str, tumbling: bool):
    gen = RandomGen() if generator == "random" else SequentialGen()
    return gen.generate(SET_SIZE, tumbling=tumbling, seed=101)


def _plan(windows, variant: str, tumbling: bool):
    semantics = (
        CoverageSemantics.PARTITIONED_BY
        if tumbling
        else CoverageSemantics.COVERED_BY
    )
    if variant == "original":
        return original_plan(windows, MIN)
    result = optimize(windows, MIN, semantics_override=semantics)
    if variant == "rewritten":
        return rewrite_plan(result.without_factors, MIN)
    return rewrite_plan(result.with_factors, MIN, description="factors")


@pytest.mark.parametrize("generator", ["random", "sequential"])
@pytest.mark.parametrize("tumbling", [True, False], ids=["part", "cov"])
@pytest.mark.parametrize("variant", ["original", "rewritten", "factors"])
def test_fig11_plan_throughput(
    benchmark, synthetic_stream, generator, tumbling, variant
):
    """Wall-clock execution of one representative run per panel."""
    windows = _windows(generator, tumbling)
    plan = _plan(windows, variant, tumbling)
    result = benchmark(execute_plan, plan, synthetic_stream)
    benchmark.extra_info["pairs"] = result.stats.total_pairs
    benchmark.extra_info["events"] = synthetic_stream.num_events


def test_fig11_report(benchmark, synthetic_stream, bench_runs, report_sink):
    """Regenerate the paper's four panels (one row per window set)."""

    def run():
        sections = []
        for generator in ("random", "sequential"):
            for tumbling in (True, False):
                panel = run_panel(
                    generator,
                    tumbling,
                    SET_SIZE,
                    synthetic_stream,
                    runs=bench_runs,
                )
                sections.append(panel.render())
        return "\n\n".join(sections)

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink("fig11_synth10m_w5", "Figure 11 (|W|=5, synthetic)\n" + text)
