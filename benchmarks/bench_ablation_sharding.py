"""Ablation: key-sharded runtime throughput vs shard count
(DESIGN.md §7 and §8).

The :class:`~repro.runtime.ShardedSession` hash-partitions the key
space across N shard-local session cores behind one coordinator clock.
This ablation runs the same distributive workload (SUM + MIN over a
multi-key constant-rate stream, the paper's steady-rate setting) at
shard counts 1–8 on all three backends:

* ``serial`` — every core in the coordinator process: measures the
  pure partitioning overhead (expected <= 1x; it is the oracle, not
  the fast path);
* ``process`` — one worker per shard fed columnar chunk slices over
  pipes: the data-parallel path, paying one pickle → pipe → unpickle
  round trip per shard per chunk;
* ``shm`` — the same workers fed through per-shard shared-memory
  rings: columns are memcpy'd into fixed slots, nothing on the data
  plane is pickled, so the serialization cost the pipe backend pays
  per chunk disappears.

Every run's merged results are asserted bit-identical to the 1-shard
baseline (invariant 10 — a benchmark that got faster by being wrong
would be worthless).  Two acceptance gates apply when the machine has
>= 4 CPUs: the process backend must beat the 1-shard baseline at >= 4
shards, and the shm backend must beat the pipe backend at >= 4 shards
(the data-plane rewrite has to pay for itself where parallelism is
real).  Emits ``BENCH_sharding.json`` for the CI perf trajectory;
``bench compare --portable-only`` diffs it across commits.
"""

import os
import time
from pathlib import Path

import numpy as np

from repro.aggregates.registry import AVG, COUNT, MAX, MIN, STDEV, SUM, SUMSQ
from repro.bench.reporting import format_table, write_json_report
from repro.core.multiquery import Query
from repro.runtime import ShardedSession
from repro.windows.window import Window, WindowSet
from repro.workloads.streams import constant_rate_stream

JSON_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_JSON",
        Path(__file__).parent / "results" / "BENCH_sharding.json",
    )
)

NUM_KEYS = 256
RATE = 8
#: Two hyper-periods of the largest range per chunk: fewer, bigger
#: IPC slices (the knob a deployment would also turn).
CHUNK_TICKS = 1200
#: Seven distributive/algebraic groups: every group re-bins the chunk
#: (its own pane tables), so per-event compute is dense enough that
#: shard-local work dominates coordinator routing — the regime key
#: sharding exists for (a service runs many dashboards, Section I).
QUERIES = [
    Query("sums", WindowSet([Window(300, 50), Window(600, 100)]), SUM),
    Query("mins", WindowSet([Window(400, 80)]), MIN),
    Query("maxs", WindowSet([Window(360, 60)]), MAX),
    Query("counts", WindowSet([Window(300, 100)]), COUNT),
    Query("avgs", WindowSet([Window(480, 120)]), AVG),
    Query("stdevs", WindowSet([Window(240, 60)]), STDEV),
    Query("sumsqs", WindowSet([Window(420, 70)]), SUMSQ),
]
SHARD_COUNTS = (1, 2, 4, 8)


def _run(stream, num_shards, backend):
    session = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=num_shards,
        backend=backend,
        chunk_ticks=CHUNK_TICKS,
        hysteresis=None,
    )
    try:
        for query in QUERIES:
            session.register(query)
        started = time.perf_counter()
        session.push_batch(stream)
        results = session.finish(horizon=stream.horizon)
        wall = time.perf_counter() - started
        physical = session.stats().total_physical
    finally:
        session.close()
    return results, wall, physical


def _assert_matches(baseline, results):
    for name, by_window in baseline.items():
        for window, reference in by_window.items():
            np.testing.assert_array_equal(
                results[name][window].values, reference.values
            )


def test_sharding_ablation_report(report_sink, bench_events):
    stream = constant_rate_stream(
        bench_events, num_keys=NUM_KEYS, rate=RATE, seed=1
    )
    baseline_results, baseline_wall, baseline_physical = _run(
        stream, 1, "serial"
    )
    baseline_throughput = bench_events / baseline_wall

    rows = []
    series = []
    for backend in ("serial", "process", "shm"):
        for num_shards in SHARD_COUNTS:
            if backend == "serial" and num_shards == 1:
                wall, physical = baseline_wall, baseline_physical
            else:
                results, wall, physical = _run(stream, num_shards, backend)
                # Invariant 10: every configuration, same answer.
                _assert_matches(baseline_results, results)
            throughput = bench_events / wall
            speedup = throughput / baseline_throughput
            rows.append(
                (
                    backend,
                    num_shards,
                    f"{throughput / 1e3:,.0f}",
                    f"{speedup:.2f}x",
                )
            )
            series.append(
                {
                    "backend": backend,
                    "shards": num_shards,
                    "throughput": throughput,
                    "speedup_vs_1shard": speedup,
                    # Deterministic, machine-independent: sharding must
                    # never inflate the work done (bounded replay).
                    "total_physical": physical,
                }
            )

    # Acceptance gates: with enough cores, the multiprocessing backend
    # must beat the 1-shard baseline at >= 4 shards, and the
    # shared-memory data plane must beat the pipes it replaces there
    # (CI runs on >= 4 vCPUs; single-core boxes can only measure
    # overhead, not scaling).
    cpus = os.cpu_count() or 1
    process_wide = [
        s
        for s in series
        if s["backend"] == "process" and s["shards"] >= 4
    ]
    shm_wide = [
        s for s in series if s["backend"] == "shm" and s["shards"] >= 4
    ]
    if cpus >= 4:
        assert max(s["throughput"] for s in process_wide) > (
            baseline_throughput
        ), "process backend failed to beat the 1-shard baseline"
        assert max(s["throughput"] for s in shm_wide) > max(
            s["throughput"] for s in process_wide
        ), "shm backend failed to beat the pipe backend at >= 4 shards"

    report_sink(
        "ablation_sharding",
        format_table(
            ["backend", "shards", "K ev/s", "vs 1-shard"],
            rows,
            title=(
                f"Key-sharded runtime: throughput vs shard count "
                f"({bench_events:,} events, {NUM_KEYS} keys, "
                f"{cpus} CPUs)"
            ),
        ),
    )
    path = write_json_report(
        JSON_PATH,
        {
            "benchmark": "sharding",
            "events": bench_events,
            "num_keys": NUM_KEYS,
            "rate": RATE,
            "cpus": cpus,
            "series": series,
        },
    )
    assert path.exists()
