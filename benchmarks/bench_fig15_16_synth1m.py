"""Figures 15 and 16: throughput on the smaller Synthetic-1M stream,
|W| = 5 and |W| = 10.

Paper shape (Table IV): same ordering as Synthetic-10M with slightly
smaller boosts — fixed per-plan overheads amortize over fewer events.
"""

from repro.bench.experiments import run_panel


def test_fig15_report(
    benchmark, synthetic_small_stream, bench_runs, report_sink
):
    def run():
        sections = []
        for generator in ("random", "sequential"):
            for tumbling in (True, False):
                panel = run_panel(
                    generator,
                    tumbling,
                    5,
                    synthetic_small_stream,
                    runs=bench_runs,
                )
                sections.append(panel.render())
        return "\n\n".join(sections)

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink("fig15_synth1m_w5", "Figure 15 (|W|=5, small synthetic)\n" + text)


def test_fig16_report(
    benchmark, synthetic_small_stream, bench_runs, report_sink
):
    def run():
        sections = []
        for generator in ("random", "sequential"):
            for tumbling in (True, False):
                panel = run_panel(
                    generator,
                    tumbling,
                    10,
                    synthetic_small_stream,
                    runs=bench_runs,
                )
                sections.append(panel.render())
        return "\n\n".join(sections)

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink(
        "fig16_synth1m_w10", "Figure 16 (|W|=10, small synthetic)\n" + text
    )
