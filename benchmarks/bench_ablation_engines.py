"""Ablation: engine comparison on identical plans (beyond the paper).

The columnar engine is the benchmark substrate; the row-at-a-time
engine is the semantic reference.  This ablation documents the gap —
and verifies that *relative* plan ordering (the reproduction target) is
engine-independent.
"""

import pytest

from repro.aggregates.registry import MIN
from repro.core.optimizer import optimize
from repro.core.rewrite import rewrite_plan
from repro.engine.executor import execute_plan
from repro.plans.builder import original_plan
from repro.windows.window import Window, WindowSet
from repro.workloads.streams import constant_rate_stream

WINDOWS = WindowSet([Window(20, 20), Window(30, 30), Window(40, 40)])


@pytest.fixture(scope="module")
def row_stream():
    # Row-at-a-time is O(pairs) in pure Python: keep it small.
    return constant_rate_stream(2_400)


def _plans():
    result = optimize(WINDOWS, MIN)
    return {
        "original": original_plan(WINDOWS, MIN),
        "factors": rewrite_plan(result.with_factors, MIN),
    }


@pytest.mark.parametrize("engine", ["columnar", "streaming"])
@pytest.mark.parametrize("variant", ["original", "factors"])
def test_engine_throughput(benchmark, row_stream, engine, variant):
    plan = _plans()[variant]
    result = benchmark.pedantic(
        execute_plan,
        args=(plan, row_stream),
        kwargs=dict(engine=engine),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["pairs"] = result.stats.total_pairs


def test_relative_ordering_engine_independent(benchmark, row_stream):
    """Factor plans process fewer pairs than the original plan on both
    engines, by exactly the same factor."""

    def run():
        plans = _plans()
        ratios = {}
        for engine in ("columnar", "streaming"):
            original = execute_plan(plans["original"], row_stream, engine=engine)
            factors = execute_plan(plans["factors"], row_stream, engine=engine)
            ratios[engine] = (
                original.stats.total_pairs / factors.stats.total_pairs
            )
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ratios["columnar"] == pytest.approx(ratios["streaming"])
    assert ratios["columnar"] > 1.5
