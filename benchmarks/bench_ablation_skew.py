"""Ablation: elastic shards under Zipf key skew (DESIGN.md §12).

A hash partition balances *keys*, not *load*: under a Zipf-skewed
stream the hot keys concentrate on whichever shards their slots hashed
to, and the hottest shard serializes the run.  This ablation streams
the same Zipf workload (s in {0.8, 1.2}, hot ranks shuffled over the
key space) through a 4-shard session twice:

* ``static`` — the default slot->shard map, never touched;
* ``rebalanced`` — ``rebalance()`` between stream segments, letting
  the coordinator greedily migrate hot slots off the most-loaded
  shard at safe watermarks (the decayed per-slot load counters are
  the policy input).

Every run's merged results are asserted bit-identical to the 1-shard
serial oracle (invariant 10 extended to mid-stream resharding — a
migration that got faster by being wrong would be worthless), and the
decayed hot-shard load fraction must strictly drop under rebalancing
on any host (the counters are machine-independent).  The throughput
gate applies when the machine has >= 4 CPUs: at s=1.2 the rebalanced
run must beat the static run by >= 1.5x (on fewer cores there is no
parallelism for migration to reclaim, so the gate is dormant).  Emits
``BENCH_skew.json`` for the CI perf trajectory; ``bench compare
--portable-only`` diffs the machine-independent series across commits.
"""

import os
import time
from pathlib import Path

import numpy as np

from repro.aggregates.registry import AVG, MIN, SUM
from repro.bench.reporting import format_table, write_json_report
from repro.core.multiquery import Query
from repro.engine.events import EventBatch
from repro.runtime import ShardedSession
from repro.windows.window import Window, WindowSet
from repro.workloads.streams import zipf_stream

JSON_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_JSON",
        Path(__file__).parent / "results" / "BENCH_skew.json",
    )
)

NUM_KEYS = 256
RATE = 8
NUM_SHARDS = 4
CHUNK_TICKS = 1200
#: Rebalance cadence: the stream is cut into this many segments and
#: the rebalanced run migrates between segments.
SEGMENTS = 12
#: Seed chosen (deterministically) so the default hash partition is
#: visibly skewed at s=1.2 — the adversarial-but-honest case hot-slot
#: migration exists for.  Any seed skews in expectation.
SEED = 7
ZIPF_EXPONENTS = (0.8, 1.2)
QUERIES = [
    Query("sums", WindowSet([Window(300, 50), Window(600, 100)]), SUM),
    Query("mins", WindowSet([Window(400, 80)]), MIN),
    Query("avgs", WindowSet([Window(480, 120)]), AVG),
]


def _segments(stream, count):
    """Cut one EventBatch into ``count`` contiguous sub-batches."""
    bounds = np.linspace(0, stream.num_events, count + 1).astype(np.int64)
    out = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi <= lo:
            continue
        ts = stream.timestamps[lo:hi]
        out.append(
            EventBatch(
                timestamps=ts,
                keys=stream.keys[lo:hi],
                values=stream.values[lo:hi],
                horizon=int(ts[-1]) + 1,
                num_keys=stream.num_keys,
            )
        )
    return out


def _run(stream, num_shards, backend, rebalance):
    session = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=num_shards,
        backend=backend,
        chunk_ticks=CHUNK_TICKS,
        hysteresis=None,
    )
    try:
        for query in QUERIES:
            session.register(query)
        moved = 0
        started = time.perf_counter()
        for segment in _segments(stream, SEGMENTS):
            session.push_batch(segment)
            if rebalance:
                moved += session.rebalance()
        results = session.finish(horizon=stream.horizon)
        wall = time.perf_counter() - started
        loads = session.shard_loads()
        physical = session.stats().total_physical
    finally:
        session.close()
    events = [load["events"] for load in loads.values()]
    hot_fraction = max(events) / sum(events) if sum(events) else 0.0
    return results, wall, moved, hot_fraction, physical


def _assert_matches(baseline, results):
    for name, by_window in baseline.items():
        for window, reference in by_window.items():
            np.testing.assert_array_equal(
                results[name][window].values, reference.values
            )


def test_skew_ablation_report(report_sink, bench_events):
    cpus = os.cpu_count() or 1
    rows = []
    series = []
    for s in ZIPF_EXPONENTS:
        # Integer values: partial-sum merges are exact float64
        # arithmetic, so the migrated runs' extra flush boundaries
        # cannot re-associate results away from bit-identity.
        stream = zipf_stream(
            bench_events,
            num_keys=NUM_KEYS,
            s=s,
            rate=RATE,
            seed=SEED,
            integer_values=True,
        )
        oracle, _, _, _, _ = _run(stream, 1, "serial", rebalance=False)
        modes = {}
        for mode, rebalance in (("static", False), ("rebalanced", True)):
            results, wall, moved, hot_fraction, physical = _run(
                stream, NUM_SHARDS, "shm", rebalance
            )
            # Invariant 10, extended to mid-stream resharding: a
            # migrated layout computes the same answer.
            _assert_matches(oracle, results)
            modes[mode] = {
                "throughput": bench_events / wall,
                "slots_moved": moved,
                "hot_fraction": hot_fraction,
                "physical": physical,
            }
            rows.append(
                (
                    f"{s:.1f}",
                    mode,
                    f"{bench_events / wall / 1e3:,.0f}",
                    f"{hot_fraction:.0%}",
                    str(moved),
                )
            )
        static, rebalanced = modes["static"], modes["rebalanced"]
        # Machine-independent acceptance: migration must actually
        # flatten the decayed load profile (the counters are
        # deterministic, so this holds on any host).
        assert rebalanced["slots_moved"] > 0, f"s={s}: no slots migrated"
        assert rebalanced["hot_fraction"] < static["hot_fraction"], (
            f"s={s}: rebalancing did not reduce the hot-shard share "
            f"({rebalanced['hot_fraction']:.0%} vs "
            f"{static['hot_fraction']:.0%})"
        )
        speedup = rebalanced["throughput"] / static["throughput"]
        if s >= 1.2 and cpus >= 4:
            # With real parallelism, reclaiming the serialized hot
            # shard must pay: >= 1.5x over the static layout.
            assert speedup >= 1.5, (
                f"s={s}: rebalanced {speedup:.2f}x static "
                f"(< 1.5x gate on {cpus} CPUs)"
            )
        series.append(
            {
                "zipf_s": s,
                "static_throughput": static["throughput"],
                "rebalanced_throughput": rebalanced["throughput"],
                "speedup_rebalanced_vs_static": speedup,
                "static_hot_fraction": static["hot_fraction"],
                "rebalanced_hot_fraction": rebalanced["hot_fraction"],
                "slots_moved": rebalanced["slots_moved"],
                "static_physical": static["physical"],
                "rebalanced_physical": rebalanced["physical"],
            }
        )

    report_sink(
        "ablation_skew",
        format_table(
            ["zipf s", "mode", "K ev/s", "hot shard", "slots moved"],
            rows,
            title=(
                f"Elastic shards under Zipf skew ({bench_events:,} "
                f"events, {NUM_KEYS} keys, x{NUM_SHARDS} shm shards, "
                f"{cpus} CPUs)"
            ),
        ),
    )
    path = write_json_report(
        JSON_PATH,
        {
            "benchmark": "skew",
            "events": bench_events,
            "num_keys": NUM_KEYS,
            "rate": RATE,
            "shards": NUM_SHARDS,
            "segments": SEGMENTS,
            "cpus": cpus,
            "series": series,
        },
    )
    assert path.exists()
