"""Table I: mean/max throughput boosts on Synthetic-10M.

Eight setups (RandomGen/SequentialGen × |W| ∈ {5, 10} × tumbling/
hopping).  Paper shape: every mean boost > 1; factor-window boosts
exceed no-factor boosts everywhere; SequentialGen-tumbling shows the
largest factor-window gains (paper: 7.9× mean at |W| = 10).
"""

from repro.bench.experiments import boost_summary_table
from repro.bench.reporting import format_boost_summary_table
from conftest import BENCH_EVENTS, BENCH_RUNS


def test_table1_report(benchmark, report_sink):
    summaries = benchmark.pedantic(
        boost_summary_table,
        kwargs=dict(
            dataset="synthetic",
            set_sizes=(5, 10),
            events=BENCH_EVENTS,
            runs=BENCH_RUNS,
        ),
        rounds=1,
        iterations=1,
    )
    text = format_boost_summary_table(
        summaries, title="Table I: throughput boosts on synthetic stream"
    )
    report_sink("table1_synth10m_summary", text)

    # Shape assertions (the reproduction target, not absolute numbers):
    by_setup = {s.setup: s for s in summaries}
    for summary in summaries:
        assert summary.max_with >= summary.max_without
    # SequentialGen-tumbling gains the most from factor windows.
    assert (
        by_setup["S-10-tumbling"].mean_with
        >= by_setup["R-10-tumbling"].mean_with
    )
