"""Benchmark: the committed scenario library, end to end.

Runs every file under ``scenarios/`` twice — on the runtime shape it
declares (sharded worker backends, rebalance cadence, chaos schedule)
and on the serial-sync oracle — asserting both reproduce the
scenario's committed digest and counters before any timing is read
(a fast wrong run is worthless).  The machine-independent series
(``pairs``/``physical`` per scenario — deterministic logical and
physical work) gates the CI perf trajectory through ``bench compare
--portable-only``; throughputs ride along as context.

Scenario files fix their own event counts (the committed digests
depend on them), so ``REPRO_BENCH_EVENTS`` deliberately does not
apply here.
"""

import os
import time
from pathlib import Path

from repro.bench.reporting import format_table, write_json_report
from repro.scenarios import ScenarioRunner, load_scenario

JSON_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_JSON",
        Path(__file__).parent / "results" / "BENCH_scenarios.json",
    )
)

LIBRARY = Path(__file__).resolve().parents[1] / "scenarios"


def _timed_run(runner, **overrides):
    started = time.perf_counter()
    report = runner.run(**overrides)
    return report, time.perf_counter() - started


def test_scenarios_bench_report(report_sink):
    cpus = os.cpu_count() or 1
    paths = sorted(LIBRARY.glob("*.yaml"))
    assert paths, f"no committed scenarios under {LIBRARY}"
    rows = []
    series = []
    for path in paths:
        runner = ScenarioRunner(load_scenario(path))
        expect = runner.scenario.expect
        declared, declared_wall = _timed_run(runner)
        oracle, oracle_wall = _timed_run(
            runner, backend="serial", shards=1
        )
        # Conformance before timing: both shapes must reproduce the
        # committed outcome exactly (invariants 9-12).
        declared.verify(expect)
        oracle.verify(expect)
        assert declared.digest == oracle.digest
        if runner.scenario.chaos is not None:
            assert declared.faults_fired >= 1, (
                f"{path.stem}: chaos schedule armed but never fired"
            )
            assert declared.worker_recoveries >= 1, (
                f"{path.stem}: faulted workers were not recovered"
            )
        shape = f"{declared.backend} x{declared.shards}"
        rows.append(
            (
                path.stem,
                shape,
                f"{declared.events:,}",
                f"{declared.total_pairs:,}",
                f"{declared.events / declared_wall / 1e3:,.0f}",
                f"{oracle.events / oracle_wall / 1e3:,.0f}",
            )
        )
        series.append(
            {
                "scenario": path.stem,
                "backend": declared.backend,
                "shards": declared.shards,
                "events": declared.events,
                # Deterministic work counters: equal on every host, so
                # the portable gate pins them exactly.
                "pairs": declared.total_pairs,
                "physical": declared.total_physical,
                "late_dropped": declared.late_dropped,
                # Context only (machine-dependent):
                "declared_throughput": declared.events / declared_wall,
                "oracle_throughput": oracle.events / oracle_wall,
            }
        )

    report_sink(
        "scenarios",
        format_table(
            [
                "scenario",
                "declared shape",
                "events",
                "pairs",
                "K ev/s",
                "oracle K ev/s",
            ],
            rows,
            title=(
                f"Committed scenario library, declared runtime vs "
                f"serial oracle ({cpus} CPUs)"
            ),
        ),
    )
    path = write_json_report(
        JSON_PATH,
        {
            "benchmark": "scenarios",
            "scenarios": len(series),
            "cpus": cpus,
            "series": series,
        },
    )
    assert path.exists()
