"""Figures 17 and 18: throughput on the Real-32M (DEBS-like) stream,
|W| = 5 and |W| = 10.

Paper shape (Table II): rewritten plans beat the original plans; factor
windows add the largest boosts on SequentialGen-tumbling sets (up to
9.1×).  Aggregation cost depends on event timing only, so the DEBS-like
value process exercises the identical code paths as the real trace
(DESIGN.md §2).
"""

import pytest

from repro.aggregates.registry import MIN
from repro.bench.experiments import run_panel
from repro.core.optimizer import optimize
from repro.core.rewrite import rewrite_plan
from repro.engine.executor import execute_plan
from repro.plans.builder import original_plan
from repro.windows.coverage import CoverageSemantics
from repro.workloads.generators import SequentialGen


@pytest.mark.parametrize("variant", ["original", "factors"])
def test_fig17_real_throughput(benchmark, real_stream, variant):
    windows = SequentialGen().generate(5, tumbling=True, seed=101)
    if variant == "original":
        plan = original_plan(windows, MIN)
    else:
        result = optimize(
            windows, MIN, semantics_override=CoverageSemantics.PARTITIONED_BY
        )
        plan = rewrite_plan(result.with_factors, MIN)
    result = benchmark(execute_plan, plan, real_stream)
    benchmark.extra_info["pairs"] = result.stats.total_pairs


def _panels(stream, set_size, runs):
    sections = []
    for generator in ("random", "sequential"):
        for tumbling in (True, False):
            panel = run_panel(
                generator, tumbling, set_size, stream, runs=runs
            )
            sections.append(panel.render())
    return "\n\n".join(sections)


def test_fig17_report(benchmark, real_stream, bench_runs, report_sink):
    text = benchmark.pedantic(
        lambda: _panels(real_stream, 5, bench_runs), rounds=1, iterations=1
    )
    report_sink("fig17_real_w5", "Figure 17 (|W|=5, DEBS-like)\n" + text)


def test_fig18_report(benchmark, real_stream, bench_runs, report_sink):
    text = benchmark.pedantic(
        lambda: _panels(real_stream, 10, bench_runs), rounds=1, iterations=1
    )
    report_sink("fig18_real_w10", "Figure 18 (|W|=10, DEBS-like)\n" + text)
