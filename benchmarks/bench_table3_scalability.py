"""Table III + Figures 20/21: scalability tests, |W| ∈ {15, 20}.

Paper shape: plans keep scaling smoothly as the window set grows;
boosts increase with |W| (paper: up to 16.8× for S-20-tumbling), and
SequentialGen-tumbling remains the most factor-window-friendly setup.
"""

from repro.bench.experiments import boost_summary_table, run_panel
from repro.bench.reporting import format_boost_summary_table
from conftest import BENCH_EVENTS, BENCH_RUNS


def test_table3_report(benchmark, report_sink):
    summaries = benchmark.pedantic(
        boost_summary_table,
        kwargs=dict(
            dataset="synthetic",
            set_sizes=(15, 20),
            events=BENCH_EVENTS,
            runs=BENCH_RUNS,
        ),
        rounds=1,
        iterations=1,
    )
    text = format_boost_summary_table(
        summaries, title="Table III: scalability (|W| in {15, 20})"
    )
    report_sink("table3_scalability", text)

    by_setup = {s.setup: s for s in summaries}
    for summary in summaries:
        assert summary.max_with >= summary.max_without
    assert (
        by_setup["S-20-tumbling"].mean_with
        >= by_setup["R-20-tumbling"].mean_with
    )


def test_fig20_21_report(benchmark, synthetic_stream, bench_runs, report_sink):
    """Per-run series for |W| = 15 (Fig 20) and |W| = 20 (Fig 21)."""

    def run():
        sections = []
        for set_size, figure in ((15, "Figure 20"), (20, "Figure 21")):
            for generator in ("random", "sequential"):
                for tumbling in (True, False):
                    panel = run_panel(
                        generator,
                        tumbling,
                        set_size,
                        synthetic_stream,
                        runs=bench_runs,
                    )
                    sections.append(f"{figure}: {panel.render()}")
        return "\n\n".join(sections)

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink("fig20_21_scalability_series", text)
