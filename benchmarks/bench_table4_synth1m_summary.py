"""Table IV: mean/max throughput boosts on the Synthetic-1M stream.

Paper shape: same ordering as Table I; a smaller stream slightly
compresses the boosts because fixed costs amortize over fewer events.
"""

from repro.bench.experiments import boost_summary_table
from repro.bench.reporting import format_boost_summary_table
from conftest import BENCH_EVENTS, BENCH_RUNS


def test_table4_report(benchmark, report_sink):
    summaries = benchmark.pedantic(
        boost_summary_table,
        kwargs=dict(
            dataset="synthetic",
            set_sizes=(5, 10),
            events=max(BENCH_EVENTS // 4, 2_000),
            runs=BENCH_RUNS,
        ),
        rounds=1,
        iterations=1,
    )
    text = format_boost_summary_table(
        summaries, title="Table IV: throughput boosts on small synthetic stream"
    )
    report_sink("table4_synth1m_summary", text)

    for summary in summaries:
        assert summary.max_with >= summary.max_without
