"""Ablation: factor-window search quality and cost (beyond the paper).

Two questions the paper leaves open (Section IV, footnote 3):

1. How far is the heuristic factor search (Algorithm 3) from the true
   optimum?  We compare against the exhaustive Steiner-style search on
   small window sets.
2. What do the two search strategies cost?  We time Algorithm 1,
   Algorithm 3, and the exhaustive search.
"""

import pytest

from repro.bench.reporting import format_table
from repro.core.cost import CostModel
from repro.core.exhaustive import exhaustive_min_cost, optimality_gap
from repro.core.optimizer import min_cost_wcg, min_cost_wcg_with_factors
from repro.windows.coverage import CoverageSemantics
from repro.windows.window import Window, WindowSet
from repro.workloads.generators import RandomGen

PART = CoverageSemantics.PARTITIONED_BY


def _small_sets(count=8):
    gen = RandomGen(seed_ranges=(2, 5), kr=12)
    return [
        gen.generate(3, tumbling=True, seed=200 + i) for i in range(count)
    ]


def test_ablation_heuristic_vs_optimal(benchmark, report_sink):
    def run():
        rows = []
        for i, windows in enumerate(_small_sets()):
            baseline = CostModel().baseline_cost(windows)
            plain = min_cost_wcg(windows, PART).total_cost
            heuristic, _ = min_cost_wcg_with_factors(windows, PART)
            optimal = exhaustive_min_cost(
                windows, PART, max_factors=2, max_candidates=128
            )
            rows.append(
                (
                    f"set-{i + 1}",
                    baseline,
                    plain,
                    heuristic.total_cost,
                    optimal.total_cost,
                    f"{optimality_gap(heuristic.total_cost, optimal.total_cost):.1%}",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["Window set", "Baseline", "Alg 1", "Alg 3", "Exhaustive", "Gap"],
        rows,
        title="Ablation: heuristic factor search vs exhaustive optimum",
    )
    report_sink("ablation_factor_search", text)

    for _, baseline, plain, heuristic, optimal, _gap in rows:
        assert optimal <= heuristic <= plain <= baseline


@pytest.mark.parametrize("search", ["alg1", "alg3", "exhaustive"])
def test_ablation_search_time(benchmark, search):
    windows = WindowSet([Window(8, 8), Window(12, 12), Window(20, 20)])
    if search == "alg1":
        benchmark(min_cost_wcg, windows, PART)
    elif search == "alg3":
        benchmark(min_cost_wcg_with_factors, windows, PART)
    else:
        benchmark.pedantic(
            exhaustive_min_cost,
            args=(windows, PART),
            kwargs=dict(max_factors=2, max_candidates=128),
            rounds=3,
            iterations=1,
        )
