"""Service under load: the multi-tenant TCP front door (DESIGN.md §10,
invariant 13).

Three questions a deployment of the session service needs answered:

* **Front-door throughput** — events/second through the JSON-lines
  protocol with several tenants streaming concurrently (wire codec +
  admission + session apply, the full per-request path).
* **Request latency** — p50/p99 per-batch ingest latency seen by a
  well-behaved producer.
* **The cost of dying** — the same schedule with a fault plan that
  hard-kills one tenant mid-stream: how much wall-clock the transparent
  restore+replay adds, and how long the replayed tail was.

Correctness is asserted before anything is reported: the disturbed
run's bystander results must be bit-identical to the undisturbed
run's, and the killed tenant's results bit-identical to a serial
sync-ingest oracle (invariant 13 — a throughput number measured while
losing data would be worthless).  Emits ``BENCH_service.json``;
``bench compare --portable-only`` gates the deterministic replay
counter across commits.
"""

import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.bench.reporting import format_table, write_json_report
from repro.runtime import QuerySession
from repro.runtime.faults import Fault, FaultPlan
from repro.service import ServiceClient, SessionManager, serve_in_thread
from repro.service.protocol import serialize_results

JSON_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_JSON",
        Path(__file__).parent / "results" / "BENCH_service.json",
    )
)

NUM_KEYS = 64
NUM_TENANTS = 3
BATCH_EVENTS = 200
RATE = 4  # events per tick
CHECKPOINT_EVERY = 256
KILL_AT_WATERMARK = 40
VICTIM = "t0"
SQL = "SELECT SUM(v) FROM s GROUP BY WINDOWS(HOPPING(second, 60, 20))"


def tenant_events(tenant_index: int, total_events: int):
    """A sorted integer-valued stream per tenant (exact float64)."""
    rng = np.random.default_rng(100 + tenant_index)
    ticks = max(1, total_events // RATE)
    events = []
    for t in range(1, ticks + 1):
        for _ in range(RATE):
            events.append(
                (
                    t,
                    int(rng.integers(0, NUM_KEYS)),
                    float(rng.integers(0, 1000)),
                )
            )
    return events


def producer(port, tenant, events, out):
    """One well-behaved tenant: ordered batches, one connection,
    per-request latency recorded."""
    try:
        with ServiceClient(port=port) as client:
            client.register(tenant, SQL)
            latencies = []
            for start in range(0, len(events), BATCH_EVENTS):
                batch = events[start : start + BATCH_EVENTS]
                t0 = time.perf_counter()
                client.ingest(tenant, batch)
                latencies.append(time.perf_counter() - t0)
            out[tenant] = {
                "latencies": latencies,
                "results": serialize_results(client.results(tenant)),
            }
    except Exception as exc:  # noqa: BLE001 - surfaced by the assert
        out[tenant] = {"error": exc}


def run_fleet(tmp_path, tag, streams, fault_plan=None):
    """All tenants streaming concurrently over TCP; returns per-tenant
    producer output, per-tenant manager stats, and the wall time."""
    out: dict = {}
    with SessionManager(
        {"defaults": {"num_keys": NUM_KEYS, "rate": 1e9, "burst": 1e9}},
        directory=tmp_path / f"ckpt-{tag}",
        checkpoint_every=CHECKPOINT_EVERY,
        fault_plan=fault_plan,
    ) as manager:
        server = serve_in_thread(manager, max_workers=NUM_TENANTS + 1)
        try:
            threads = [
                threading.Thread(
                    target=producer,
                    args=(server.port, tenant, events, out),
                )
                for tenant, events in streams.items()
            ]
            started = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - started
            stats = {t: manager.stats(t)["stats"] for t in streams}
        finally:
            server.stop()
    for tenant, result in out.items():
        assert "error" not in result, (tenant, result.get("error"))
    return out, stats, wall


def percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))]


def test_service_bench_report(report_sink, bench_events, tmp_path):
    per_tenant = max(BATCH_EVENTS, bench_events // NUM_TENANTS)
    streams = {
        f"t{i}": tenant_events(i, per_tenant) for i in range(NUM_TENANTS)
    }
    total_events = sum(len(ev) for ev in streams.values())

    # Undisturbed fleet: the throughput/latency baseline and the
    # bystander oracle for the disturbed run.
    baseline_out, baseline_stats, baseline_wall = run_fleet(
        tmp_path, "baseline", streams
    )
    for tenant, stat in baseline_stats.items():
        assert stat["admitted_events"] == len(streams[tenant])
        assert stat["restores"] == 0

    # Disturbed fleet: same schedule, the victim hard-killed mid-run.
    plan = FaultPlan(
        Fault(kind="kill_session", tenant=VICTIM, op="ingest",
              at_watermark=KILL_AT_WATERMARK)
    )
    disturbed_out, disturbed_stats, disturbed_wall = run_fleet(
        tmp_path, "disturbed", streams, fault_plan=plan
    )
    assert disturbed_stats[VICTIM]["restores"] == 1
    assert disturbed_stats[VICTIM]["replay_skipped"] == 0

    # Invariant 13, asserted before anything is reported: bystanders
    # bit-identical across runs, the victim bit-identical to a serial
    # sync oracle of its own timeline.
    for tenant in streams:
        if tenant == VICTIM:
            continue
        assert disturbed_out[tenant]["results"] == (
            baseline_out[tenant]["results"]
        ), f"bystander {tenant} perturbed by the victim's crash"
    oracle = QuerySession(num_keys=NUM_KEYS)
    try:
        oracle.register(SQL)
        for ts, key, value in streams[VICTIM]:
            oracle.push(ts, key, value)
        expected = serialize_results(oracle.drain_results())
    finally:
        oracle.close()
    assert disturbed_out[VICTIM]["results"] == expected
    # The retained tail (ops since the last auto-checkpoint) is
    # deterministic: a fixed request schedule and a fixed cadence land
    # the same count on every machine, so it gates portably across
    # commits — growth means checkpointing got lazier.
    retained_tail_pairs = disturbed_stats[VICTIM]["tail_length"]

    all_latencies = [
        lat
        for result in baseline_out.values()
        for lat in result["latencies"]
    ]
    p50_ms = percentile(all_latencies, 0.50) * 1e3
    p99_ms = percentile(all_latencies, 0.99) * 1e3
    events_per_sec = total_events / baseline_wall
    kill_overhead_seconds = max(0.0, disturbed_wall - baseline_wall)

    report = {
        "benchmark": "service",
        "events": total_events,
        "tenants": NUM_TENANTS,
        "num_keys": NUM_KEYS,
        "batch_events": BATCH_EVENTS,
        "checkpoint_every": CHECKPOINT_EVERY,
        "front_door": {
            "events_per_sec": events_per_sec,
            "ingest_p50_ms": p50_ms,
            "ingest_p99_ms": p99_ms,
            "wall_seconds": baseline_wall,
        },
        "recovery": {
            "kill_at_watermark": KILL_AT_WATERMARK,
            "restores": disturbed_stats[VICTIM]["restores"],
            "retained_tail_pairs": retained_tail_pairs,
            "disturbed_wall_seconds": disturbed_wall,
            "kill_overhead_seconds": kill_overhead_seconds,
        },
        "identity": {
            # Asserted above; recorded so the report is self-auditing.
            "bystanders_bit_identical": True,
            "victim_matches_oracle": True,
        },
    }

    report_sink(
        "bench_service",
        format_table(
            ["metric", "value"],
            [
                ("events/s (3 tenants over TCP)", f"{events_per_sec:,.0f}"),
                ("ingest p50", f"{p50_ms:,.2f} ms"),
                ("ingest p99", f"{p99_ms:,.2f} ms"),
                ("kill overhead", f"{kill_overhead_seconds * 1e3:,.0f} ms"),
                ("retained tail", f"{retained_tail_pairs} ops"),
            ],
            title=(
                f"Session service: {total_events:,} events, "
                f"{NUM_TENANTS} tenants, kill+restore of one "
                f"(invariant 13 asserted bit-identical)"
            ),
        ),
    )
    path = write_json_report(JSON_PATH, report)
    assert path.exists()
