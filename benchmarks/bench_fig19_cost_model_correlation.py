"""Figure 19: correlation between the cost model's predicted speedup
(γ_C) and the observed speedup (γ_T), factor plans over no-factor plans.

Paper shape: Pearson r >= 0.94 on every panel.  We report both the
wall-clock correlation (subject to timing noise on small streams) and
the deterministic processed-pair correlation, which isolates the cost
model's fidelity from scheduler jitter; the latter must be ~1.
"""

from repro.bench.analysis import pearson_r
from repro.bench.experiments import cost_model_correlation, render_correlation
from conftest import BENCH_EVENTS, BENCH_RUNS


def test_fig19_report(benchmark, report_sink):
    def run():
        wall = cost_model_correlation(
            set_sizes=(5, 10),
            events=BENCH_EVENTS,
            runs=BENCH_RUNS,
            use_pairs=False,
        )
        pairs = cost_model_correlation(
            set_sizes=(5, 10),
            events=BENCH_EVENTS,
            runs=BENCH_RUNS,
            use_pairs=True,
        )
        return wall, pairs

    wall, pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Figure 19 (γ_C vs γ_T; wall-clock)\n"
        + render_correlation(wall)
        + "\n\nFigure 19 (γ_C vs work; deterministic)\n"
        + render_correlation(pairs)
    )
    report_sink("fig19_cost_model_correlation", text)

    # Shape: the deterministic work metric tracks the cost model almost
    # perfectly (paper's r >= 0.94; ours is exact modulo hopping-window
    # stream-boundary effects).
    for panel in pairs:
        if len(panel.predicted) >= 2:
            assert panel.r >= 0.94
