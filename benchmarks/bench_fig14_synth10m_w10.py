"""Figure 14: throughput on Synthetic-10M window sets, |W| = 10.

Same four panels as Figure 11 with larger window sets.  Paper shape:
sharing opportunities grow with |W|, so boosts exceed the |W| = 5 case
(Table I: up to 3.4× RandomGen-tumbling, 6.2× RandomGen-hopping, 9.4×
SequentialGen-tumbling).
"""

import pytest

from repro.aggregates.registry import MIN
from repro.bench.experiments import run_panel
from repro.core.optimizer import optimize
from repro.core.rewrite import rewrite_plan
from repro.engine.executor import execute_plan
from repro.plans.builder import original_plan
from repro.windows.coverage import CoverageSemantics
from repro.workloads.generators import SequentialGen

SET_SIZE = 10


@pytest.mark.parametrize("variant", ["original", "rewritten", "factors"])
def test_fig14_sequential_tumbling_throughput(
    benchmark, synthetic_stream, variant
):
    """The panel with the paper's largest gap (S-10-tumbling)."""
    windows = SequentialGen().generate(SET_SIZE, tumbling=True, seed=101)
    if variant == "original":
        plan = original_plan(windows, MIN)
    else:
        result = optimize(
            windows,
            MIN,
            semantics_override=CoverageSemantics.PARTITIONED_BY,
        )
        gmin = (
            result.without_factors
            if variant == "rewritten"
            else result.with_factors
        )
        plan = rewrite_plan(gmin, MIN)
    result = benchmark(execute_plan, plan, synthetic_stream)
    benchmark.extra_info["pairs"] = result.stats.total_pairs


def test_fig14_report(benchmark, synthetic_stream, bench_runs, report_sink):
    def run():
        sections = []
        for generator in ("random", "sequential"):
            for tumbling in (True, False):
                panel = run_panel(
                    generator,
                    tumbling,
                    SET_SIZE,
                    synthetic_stream,
                    runs=bench_runs,
                )
                sections.append(panel.render())
        return "\n\n".join(sections)

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink("fig14_synth10m_w10", "Figure 14 (|W|=10, synthetic)\n" + text)
