"""Ablation: live plan switching vs cold restart (beyond the paper).

The live :class:`~repro.runtime.QuerySession` registers queries
mid-stream by re-optimizing one shared group and switching plans at a
watermark boundary — transplanting operator state and replaying at
most the reorder buffer plus one chunk (DESIGN.md §6).  The naive
alternative a service without the runtime would take is a **cold
restart**: re-execute the whole history under the new workload's plan.

This ablation measures, at several stream sizes:

* steady-state session throughput vs the batch chunked engine on the
  same final workload (the price of liveness);
* plan-switch latency (the register call, including re-optimization
  and the generation rebuild) vs the cold-restart cost of re-running
  the prefix;

and emits machine-readable ``BENCH_session.json`` for the CI perf
trajectory.
"""

import os
import time
from pathlib import Path

from repro.aggregates.registry import MIN
from repro.bench.reporting import format_table, write_json_report
from repro.core.multiquery import Query, optimize_workload
from repro.engine.executor import execute_plan
from repro.runtime import QuerySession
from repro.windows.window import Window, WindowSet
from repro.workloads.streams import constant_rate_stream

JSON_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_JSON",
        Path(__file__).parent / "results" / "BENCH_session.json",
    )
)

BASE = Query("base", WindowSet([Window(400, 200), Window(800, 400)]), MIN)
JOINER = Query("joiner", WindowSet([Window(100, 100)]), MIN)
REGISTER_FRACTION = 0.8


def _run_session(rows, horizon, register_at):
    session = QuerySession(num_keys=1, max_lateness=0, hysteresis=None)
    session.register(BASE)
    started = time.perf_counter()
    for i, (ts, key, value) in enumerate(rows):
        if i == register_at:
            session.register(JOINER)
        session.push(ts, key, value)
    session.finish(horizon=horizon)
    wall = time.perf_counter() - started
    switch = next(
        s for s in session.switches if s.generation > 1
    )
    return session, wall, switch


def test_session_ablation_report(report_sink, bench_events):
    rows_table = []
    series = []
    for events in (bench_events // 4, bench_events):
        stream = constant_rate_stream(events, seed=1)
        rows = list(stream.rows())
        register_at = int(len(rows) * REGISTER_FRACTION)

        session, session_wall, switch = _run_session(
            rows, stream.horizon, register_at
        )

        # Batch reference: the final workload, cold, on the chunked
        # engine (no reorder buffer, no liveness machinery).
        workload = optimize_workload([BASE, JOINER])
        plan = workload.groups[0].plan
        batch_result = execute_plan(plan, stream, engine="streaming-chunked")

        # Cold restart: what registering mid-stream would cost without
        # watermark-safe switching — re-run the whole prefix under the
        # new plan.
        prefix = stream.slice_time(0, int(stream.horizon * REGISTER_FRACTION))
        restart_started = time.perf_counter()
        execute_plan(plan, prefix, engine="streaming-chunked")
        restart_seconds = time.perf_counter() - restart_started

        session_throughput = events / session_wall
        speedup = restart_seconds / switch.seconds
        rows_table.append(
            (
                f"{events:,}",
                f"{session_throughput / 1e3:,.0f}",
                f"{batch_result.stats.throughput / 1e3:,.0f}",
                f"{switch.seconds * 1e3:.2f}",
                f"{restart_seconds * 1e3:.2f}",
                f"{speedup:,.0f}x",
            )
        )
        series.append(
            {
                "events": events,
                "session_throughput": session_throughput,
                "batch_throughput": batch_result.stats.throughput,
                "switch_seconds": switch.seconds,
                "cold_restart_seconds": restart_seconds,
                "switch_speedup": speedup,
                "session_physical": session.stats().total_physical,
                "batch_physical": batch_result.stats.total_physical,
            }
        )
    # The point of the runtime: switch latency is O(group
    # re-optimization), independent of history, while a cold restart
    # re-pays the whole prefix.  At toy history sizes the fixed
    # optimizer cost can exceed a (trivial) restart, so gate only the
    # largest measured size (and loosely — CI machines are noisy).
    largest = series[-1]
    assert largest["switch_seconds"] < largest["cold_restart_seconds"]
    report_sink(
        "ablation_session",
        format_table(
            [
                "events",
                "session K ev/s",
                "batch K ev/s",
                "switch ms",
                "cold restart ms",
                "speedup",
            ],
            rows_table,
            title="Live session: plan-switch latency vs cold restart",
        ),
    )
    path = write_json_report(
        JSON_PATH,
        {
            "benchmark": "session",
            "events": bench_events,
            "register_fraction": REGISTER_FRACTION,
            "series": series,
        },
    )
    assert path.exists()
