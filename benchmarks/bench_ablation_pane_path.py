"""Ablation: pane-partitioned fast path vs. k = r/s (beyond the paper).

The columnar engine's raw-read operator materializes ``N * k`` (event,
instance) pairs, so its wall-clock degrades linearly in ``k``.  The
pane-partitioned path (``columnar-panes``) and the chunked streaming
executor (``streaming-chunked``) bin each event once and assemble
instances from pane partials, so their wall-clock is nearly flat in
``k``.  This ablation measures all four registered paths across ``k``
on identical plans, verifies result equality and identical *logical*
pair counts, and emits machine-readable ``BENCH_engines.json`` (via
:mod:`repro.bench.reporting`) for the CI perf trajectory.
"""

import os
from pathlib import Path

import pytest

from repro.aggregates.registry import MIN
from repro.bench.reporting import format_table, write_json_report
from repro.engine.executor import available_engines, execute_plan, results_equal
from repro.plans.builder import original_plan
from repro.windows.window import Window, WindowSet
from repro.workloads.streams import constant_rate_stream

K_VALUES = (4, 16, 64)

#: Row-at-a-time streaming is O(pairs) in pure Python; it gets a
#: reduced stream so the full grid still finishes in CI time.
SLOW_ENGINES = {"streaming"}
SLOW_SCALE = 10

JSON_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_JSON",
        Path(__file__).parent / "results" / "BENCH_engines.json",
    )
)


def _window_set(k: int) -> WindowSet:
    """Two hopping windows with identical k, co-prime-free slides."""
    return WindowSet([Window(k * 25, 25), Window(k * 50, 50)])


@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize(
    "engine", ["columnar", "columnar-panes", "streaming-chunked"]
)
def test_pane_path_throughput(benchmark, synthetic_stream, engine, k):
    plan = original_plan(_window_set(k), MIN)
    result = benchmark.pedantic(
        execute_plan,
        args=(plan, synthetic_stream),
        kwargs=dict(engine=engine),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["pairs"] = result.stats.total_pairs
    benchmark.extra_info["physical"] = result.stats.total_physical


def test_engine_ablation_report(report_sink, bench_events):
    """Measure every registered path across k; emit text + JSON."""
    stream = constant_rate_stream(bench_events, seed=1)
    slow_stream = constant_rate_stream(
        max(bench_events // SLOW_SCALE, 2_000), seed=1
    )
    rows = []
    series = []
    for k in K_VALUES:
        plan = original_plan(_window_set(k), MIN)
        reference = None
        for engine in available_engines():
            batch = slow_stream if engine in SLOW_ENGINES else stream
            result = execute_plan(plan, batch, engine=engine)
            if engine not in SLOW_ENGINES:
                if reference is None:
                    reference = result
                else:
                    assert results_equal(reference, result)
                    assert (
                        reference.stats.pairs_per_window
                        == result.stats.pairs_per_window
                    )
            stats = result.stats
            rows.append(
                (
                    k,
                    engine,
                    f"{stats.events:,}",
                    f"{stats.throughput / 1e3:,.0f}",
                    f"{stats.total_pairs:,}",
                    f"{stats.total_physical:,}",
                    f"{stats.physical_fraction:.3f}",
                )
            )
            series.append(
                {
                    "k": k,
                    "engine": engine,
                    "events": stats.events,
                    "wall_seconds": stats.wall_seconds,
                    "throughput": stats.throughput,
                    "logical_pairs": stats.total_pairs,
                    "physical_touches": stats.total_physical,
                }
            )
        # The fast paths must beat the N*k materialization once k is
        # large; at small k the pane overhead can wash out, so only
        # gate the largest k (and loosely — CI machines are noisy).
        if k == max(K_VALUES):
            by_engine = {s["engine"]: s for s in series if s["k"] == k}
            assert (
                by_engine["columnar-panes"]["throughput"]
                > 2.0 * by_engine["columnar"]["throughput"]
            )
    report_sink(
        "ablation_pane_path",
        format_table(
            [
                "k",
                "engine",
                "events",
                "K events/s",
                "logical pairs",
                "physical",
                "phys/logical",
            ],
            rows,
            title="Pane-path ablation: speedup vs k across engine paths",
        ),
    )
    path = write_json_report(
        JSON_PATH,
        {
            "benchmark": "engines",
            "events": bench_events,
            "engines": list(available_engines()),
            "series": series,
        },
    )
    assert path.exists()
