"""Ablation: rate-aware adaptive re-optimization (§VI future work).

Replays rate traces against the static / adaptive / oracle policies and
reports total plan cost.  Shape: adaptive ≈ oracle ≤ static, with the
gap growing as the trace's rate dynamic range widens.
"""

import pytest

from repro.aggregates.registry import MIN
from repro.bench.reporting import format_table
from repro.core.adaptive import simulate_adaptive
from repro.windows.window import Window, WindowSet

#: The demonstration set whose optimal plan flips at η = 2
#: (factor-window benefit 36η − 70; see tests/core/test_adaptive.py).
WINDOWS = WindowSet([Window(6, 3), Window(8, 4)])

TRACES = {
    "steady-low": [1] * 16,
    "steady-high": [100] * 16,
    "burst": [1] * 6 + [120] * 4 + [1] * 6,
    "ramp": [1, 2, 4, 8, 16, 32, 64, 128, 64, 32, 16, 8, 4, 2, 1, 1],
}


def test_adaptive_ablation_report(benchmark, report_sink):
    def run():
        rows = []
        for name, trace in TRACES.items():
            outcome = simulate_adaptive(
                WINDOWS, MIN, trace, hysteresis=0.2, alpha=1.0
            )
            rows.append(
                (
                    name,
                    f"{outcome.static_cost:,}",
                    f"{outcome.adaptive_cost:,}",
                    f"{outcome.oracle_cost:,}",
                    len(outcome.switches),
                    f"{outcome.savings_vs_static:.1%}",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["Trace", "Static", "Adaptive", "Oracle", "Switches", "Saved"],
        rows,
        title="Ablation: adaptive re-optimization under rate drift",
    )
    report_sink("ablation_adaptive", text)

    by_name = {row[0]: row for row in rows}
    # Bursty/ramping traces must show real savings over static.
    for name in ("burst", "ramp"):
        saved = float(by_name[name][5].rstrip("%"))
        assert saved > 0


@pytest.mark.parametrize("trace", ["burst", "ramp"])
def test_adaptive_simulation_time(benchmark, trace):
    benchmark.pedantic(
        simulate_adaptive,
        args=(WINDOWS, MIN, TRACES[trace]),
        kwargs=dict(hysteresis=0.2, alpha=1.0),
        rounds=3,
        iterations=1,
    )
