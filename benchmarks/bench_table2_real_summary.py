"""Table II: mean/max throughput boosts on the Real-32M (DEBS-like)
stream, same eight setups as Table I.

Paper shape: same ordering as Table I with slightly smaller numbers
(the real trace's values do not change aggregation cost; boosts track
the window-set structure).
"""

from repro.bench.experiments import boost_summary_table
from repro.bench.reporting import format_boost_summary_table
from conftest import BENCH_EVENTS, BENCH_RUNS


def test_table2_report(benchmark, report_sink):
    summaries = benchmark.pedantic(
        boost_summary_table,
        kwargs=dict(
            dataset="real",
            set_sizes=(5, 10),
            events=BENCH_EVENTS,
            runs=BENCH_RUNS,
        ),
        rounds=1,
        iterations=1,
    )
    text = format_boost_summary_table(
        summaries, title="Table II: throughput boosts on DEBS-like stream"
    )
    report_sink("table2_real_summary", text)

    for summary in summaries:
        assert summary.max_with >= summary.max_without
        assert summary.mean_with > 0
