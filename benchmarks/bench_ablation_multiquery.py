"""Ablation: cross-query sharing (the Section-I IoT workload, beyond
the paper's single-query optimizer).

Compares three deployment strategies for a workload of N dashboard
queries over one stream: naive (every window from raw events), per-
query optimization (the paper), and shared workload optimization
(repro.core.multiquery).  Shape: shared ≤ per-query ≤ naive, with the
sharing gain growing with the number of concurrent queries.
"""

from repro.aggregates.registry import MIN
from repro.bench.reporting import format_table
from repro.core.multiquery import Query, optimize_workload
from repro.workloads.generators import SequentialGen


def _workload(num_queries: int, seed: int = 300) -> list[Query]:
    gen = SequentialGen()
    return [
        Query(
            name=f"q{i}",
            windows=gen.generate(3, tumbling=True, seed=seed + i),
            aggregate=MIN,
        )
        for i in range(num_queries)
    ]


def test_multiquery_sharing_report(benchmark, report_sink):
    def run():
        rows = []
        for num_queries in (2, 4, 6, 8, 10):
            plan = optimize_workload(_workload(num_queries))
            rows.append(
                (
                    num_queries,
                    f"{plan.baseline_cost:,}",
                    f"{plan.independent_cost:,}",
                    f"{plan.shared_cost:,}",
                    f"{plan.sharing_gain:.2f}x",
                    f"{plan.total_speedup:.2f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["Queries", "Naive", "Per-query", "Shared", "Sharing gain", "Total"],
        rows,
        title="Ablation: cross-query workload sharing",
    )
    report_sink("ablation_multiquery", text)

    gains = [float(row[4].rstrip("x")) for row in rows]
    assert all(g >= 1.0 for g in gains)
    # More concurrent queries → more overlap → larger sharing gain.
    assert gains[-1] >= gains[0]


def test_multiquery_optimize_time(benchmark):
    queries = _workload(10)
    benchmark.pedantic(
        optimize_workload, args=(queries,), rounds=3, iterations=1
    )
