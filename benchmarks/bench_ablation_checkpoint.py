"""Ablation: checkpoint/restore costs of the durable runtime
(DESIGN.md §9, invariant 12).

Three questions a deployment sizing its checkpoint cadence needs
answered:

* **Snapshot latency** — how long does ``session.snapshot()`` stall
  the command stream at different points of the run (state grows with
  registered subscriptions, not with stream length, so latency should
  plateau once the windows are warm)?
* **Snapshot size** — how many bytes does a checkpoint file take at
  those points (the disk cost of `CheckpointStore` rotation)?
* **Recovery vs cold recompute** — restoring the last checkpoint and
  replaying only the stream tail must beat recomputing from scratch;
  the speedup is the whole value proposition of checkpointing.

Every configuration's results are asserted bit-identical to the cold
run first (invariant 12 — a recovery that got faster by being wrong
would be worthless), and the resumed run's deterministic physical
work counter must match the cold run's exactly (snapshots carry the
counters, so a resumed timeline is indistinguishable).  Emits
``BENCH_checkpoint.json``; ``bench compare --portable-only`` gates
the recovery speedup and the physical counters across commits.
"""

import os
import time
from pathlib import Path

import numpy as np

from repro.aggregates.registry import AVG, MAX, MIN, SUM
from repro.bench.reporting import format_table, write_json_report
from repro.core.multiquery import Query
from repro.runtime import ShardedSession, write_checkpoint
from repro.windows.window import Window, WindowSet
from repro.workloads.streams import constant_rate_stream

JSON_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_JSON",
        Path(__file__).parent / "results" / "BENCH_checkpoint.json",
    )
)

NUM_KEYS = 64
RATE = 4
NUM_SHARDS = 2
#: Stream-position fractions where a snapshot is taken; recovery
#: restores the last one, so the replayed tail is the complement.
SNAPSHOT_POINTS = (0.25, 0.5, 0.75)
QUERIES = [
    (Query("sums", WindowSet([Window(300, 50), Window(600, 100)]), SUM), "per_key"),
    (Query("mins", WindowSet([Window(400, 80)]), MIN), "per_key"),
    (Query("maxs", WindowSet([Window(360, 60)]), MAX), "per_key"),
    (Query("avgs", WindowSet([Window(480, 120)]), AVG), "global"),
]


def _fresh():
    session = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=NUM_SHARDS,
        backend="serial",
        hysteresis=None,
    )
    for query, scope in QUERIES:
        session.register(query, scope=scope)
    return session


def _assert_matches(baseline, results):
    for name, by_window in baseline.items():
        for window, reference in by_window.items():
            np.testing.assert_array_equal(
                results[name][window].values, reference.values
            )


def test_checkpoint_ablation_report(report_sink, bench_events, tmp_path):
    stream = constant_rate_stream(
        bench_events, num_keys=NUM_KEYS, rate=RATE, seed=1
    )
    # Integer values: exact float64 integer arithmetic puts every
    # comparison under the invariant-10/12 bit-identity conditions
    # (the same trick the property suites use), so any divergence —
    # however the restore path reassembles chunks — fails loudly.
    rows = [
        (ts, key, float(int(value))) for ts, key, value in stream.rows()
    ]

    # Cold run: the oracle and the recompute-from-scratch baseline.
    cold = _fresh()
    try:
        started = time.perf_counter()
        for ts, key, value in rows:
            cold.push(ts, key, value)
        cold_results = cold.finish(horizon=stream.horizon)
        cold_wall = time.perf_counter() - started
        cold_physical = cold.stats().total_physical
    finally:
        cold.close()

    # Live run with snapshots at the configured stream points.
    points = {
        max(1, int(fraction * len(rows))): fraction
        for fraction in SNAPSHOT_POINTS
    }
    snapshots = []  # (fraction, stream index, Snapshot, ms, bytes)
    live = _fresh()
    try:
        for i, (ts, key, value) in enumerate(rows):
            if i in points:
                begun = time.perf_counter()
                snap = live.snapshot()
                latency_ms = (time.perf_counter() - begun) * 1e3
                path = write_checkpoint(snap, tmp_path / f"at-{i}.rckpt")
                snapshots.append(
                    (points[i], i, snap, latency_ms, path.stat().st_size)
                )
            live.push(ts, key, value)
        live_results = live.finish(horizon=stream.horizon)
    finally:
        live.close()
    # Snapshotting is observationally free: the snapshotted run's
    # results are the cold run's, bit for bit.
    _assert_matches(cold_results, live_results)

    # Recovery: restore the *last* snapshot, replay only the tail.
    fraction, index, snap, _, _ = snapshots[-1]
    started = time.perf_counter()
    restored = ShardedSession.restore(snap)
    try:
        for ts, key, value in rows[index:]:
            restored.push(ts, key, value)
        restored_results = restored.finish(horizon=stream.horizon)
        recovery_wall = time.perf_counter() - started
        restored_physical = restored.stats().total_physical
    finally:
        restored.close()
    _assert_matches(cold_results, restored_results)
    # The snapshot carries the work counters: a resumed timeline ends
    # with exactly the cold run's deterministic physical work.
    assert restored_physical == cold_physical
    # Replaying 1/4 of the stream must beat recomputing all of it.
    assert recovery_wall < cold_wall, (
        f"recovery ({recovery_wall:.3f}s) did not beat cold recompute "
        f"({cold_wall:.3f}s)"
    )
    speedup = cold_wall / recovery_wall

    table_rows = []
    series = []
    for point, i, snap, latency_ms, size in snapshots:
        table_rows.append(
            (
                f"{point:.0%}",
                f"{snap.watermark:,}",
                f"{latency_ms:,.1f}",
                f"{size / 1024:,.0f}",
            )
        )
        series.append(
            {
                "point": point,
                "watermark": snap.watermark,
                "snapshot_ms": latency_ms,
                "snapshot_bytes": size,
            }
        )
    report = {
        "benchmark": "checkpoint",
        "events": bench_events,
        "num_keys": NUM_KEYS,
        "rate": RATE,
        "shards": NUM_SHARDS,
        "snapshots": series,
        "recovery": {
            "tail_fraction": round(1.0 - fraction, 4),
            "cold_seconds": cold_wall,
            "recovery_seconds": recovery_wall,
            "recovery_speedup_vs_cold": speedup,
            "resumed_total_physical": restored_physical,
            "cold_total_physical": cold_physical,
        },
    }

    report_sink(
        "ablation_checkpoint",
        format_table(
            ["point", "watermark", "snapshot ms", "KiB"],
            table_rows,
            title=(
                f"Durable runtime: snapshot cost and recovery "
                f"({bench_events:,} events, {NUM_KEYS} keys, "
                f"{NUM_SHARDS} shards; restore+replay last "
                f"{1.0 - fraction:.0%}: {speedup:.1f}x vs cold)"
            ),
        ),
    )
    path = write_json_report(JSON_PATH, report)
    assert path.exists()
