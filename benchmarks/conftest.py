"""Shared benchmark configuration.

Stream sizes and run counts are scaled down from the paper's (1M-32M
events, 10 runs) so the suite finishes in CI time; set the environment
variables ``REPRO_BENCH_EVENTS`` and ``REPRO_BENCH_RUNS`` to scale back
up.  Every figure/table module writes its rendered report to
``benchmarks/results/<name>.txt`` (and stdout when ``-s`` is given), so
the regenerated rows/series survive pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.workloads.debs import debs_like_stream
from repro.workloads.streams import constant_rate_stream

BENCH_EVENTS = int(os.environ.get("REPRO_BENCH_EVENTS", "30000"))
BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "4"))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_events() -> int:
    return BENCH_EVENTS


@pytest.fixture(scope="session")
def bench_runs() -> int:
    return BENCH_RUNS


@pytest.fixture(scope="session")
def synthetic_stream():
    """Stand-in for Synthetic-10M (scaled; see module docstring)."""
    return constant_rate_stream(BENCH_EVENTS, seed=1)


@pytest.fixture(scope="session")
def synthetic_small_stream():
    """Stand-in for Synthetic-1M (1/4 of the main stream)."""
    return constant_rate_stream(max(BENCH_EVENTS // 4, 2_000), seed=1)


@pytest.fixture(scope="session")
def real_stream():
    """Stand-in for Real-32M (DEBS-like trace, scaled)."""
    return debs_like_stream(BENCH_EVENTS, seed=7)


@pytest.fixture(scope="session")
def report_sink():
    """Write a named report to benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return write
