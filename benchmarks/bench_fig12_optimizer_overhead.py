"""Figure 12: factor-window optimization overhead vs |W|.

Paper shape: overhead stays small (well under 100 ms per query even at
|W| = 20) and grows gently with the window-set size; the covered-by
search (Algorithm 2) costs more than the partitioned-by search
(Algorithm 5) because its candidate space is larger.
"""

import pytest

from repro.aggregates.registry import MIN
from repro.bench.experiments import optimizer_overhead, render_overhead
from repro.core.optimizer import optimize
from repro.windows.coverage import CoverageSemantics
from repro.workloads.generators import RandomGen
from conftest import BENCH_RUNS


@pytest.mark.parametrize("set_size", [5, 10, 15, 20])
@pytest.mark.parametrize("tumbling", [True, False], ids=["part", "cov"])
def test_fig12_optimize_time(benchmark, set_size, tumbling):
    windows = RandomGen().generate(set_size, tumbling=tumbling, seed=101)
    semantics = (
        CoverageSemantics.PARTITIONED_BY
        if tumbling
        else CoverageSemantics.COVERED_BY
    )
    benchmark(optimize, windows, MIN, semantics_override=semantics)


def test_fig12_report(benchmark, report_sink):
    points = benchmark.pedantic(
        optimizer_overhead,
        kwargs=dict(set_sizes=(5, 10, 15, 20), runs=BENCH_RUNS),
        rounds=1,
        iterations=1,
    )
    report_sink("fig12_optimizer_overhead", render_overhead(points))

    # Shape: optimization is cheap in absolute terms (< 1 s everywhere;
    # the paper reports < 100 ms on a C# implementation).
    assert all(p.stats.mean < 1.0 for p in points)
