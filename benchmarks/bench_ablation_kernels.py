"""Ablation: compiled hot kernels vs pure NumPy, and the zero-copy
data plane's bytes-copied-per-event gate (DESIGN.md §11).

Three measurements, each preceded by a bit-identity assertion (a
kernel that got faster by being wrong would be worthless):

* **kernel micros** — the three C kernels (`repro._kernels`) against
  the NumPy code they replace: stable segment grouping + reduce
  (``segment_reduce``), segmented holistic compute (MEDIAN), and the
  reorder-buffer batch push;
* **engine path** — ``columnar-panes-native`` (the fifth engine path)
  against ``columnar-panes`` on a holistic plan, where the segmented
  sort dominates;
* **zero-copy plane** — a shared-memory sharded session over the same
  stream, gating ``bytes_copied_per_event <= EVENT_BYTES`` (at most
  one materializing copy per event end-to-end; the steady-state borrow
  path copies nothing at all).

All gated metrics are machine-independent (speedup ratios and the
deterministic copy counter), so ``bench compare --portable-only``
diffs ``BENCH_kernels.json`` across commits and hardware.  When no C
compiler is available the kernel sections are skipped — the fallback
path's correctness is covered by the tier-1 suite, not here.
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import _kernels as kernels
from repro.aggregates.registry import MEDIAN, SUM
from repro.bench.reporting import format_table, write_json_report
from repro.core.multiquery import Query
from repro.engine.columnar import holistic_segment_values
from repro.engine.executor import execute_plan, results_equal
from repro.engine.outoforder import ReorderBuffer, scramble_batch
from repro.plans.builder import original_plan
from repro.runtime import ShardedSession
from repro.runtime.shm_ring import EVENT_BYTES
from repro.windows.window import Window, WindowSet
from repro.workloads.streams import constant_rate_stream

JSON_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_JSON",
        Path(__file__).parent / "results" / "BENCH_kernels.json",
    )
)

NUM_KEYS = 64
RATE = 8
MAX_LATENESS = 40
#: Loose acceptance floors — CI machines are noisy; the tighter
#: trajectory gate is ``bench compare`` against the stored baseline.
MIN_KERNEL_SPEEDUP = 1.5
MIN_ENGINE_SPEEDUP = 1.1


def _best(fn, reps=5):
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _kernel_micros(n: int) -> "list[dict]":
    """Time each C kernel against the NumPy code it replaces."""
    rng = np.random.default_rng(0)
    segs = max(n // 100, 16)
    codes = rng.integers(0, segs, n).astype(np.int64)
    values = rng.random(n)

    pure = SUM.segment_reduce(codes, values, segs, native=False)
    native = SUM.segment_reduce(codes, values, segs, native=True)
    for a, b in zip(pure, native):
        np.testing.assert_array_equal(a, b)
    seg_py = _best(
        lambda: SUM.segment_reduce(codes, values, segs, native=False)
    )
    seg_c = _best(
        lambda: SUM.segment_reduce(codes, values, segs, native=True)
    )

    ids_py, vals_py = holistic_segment_values(
        codes, values, MEDIAN, native=False
    )
    ids_c, vals_c = holistic_segment_values(
        codes, values, MEDIAN, native=True
    )
    np.testing.assert_array_equal(ids_py, ids_c)
    np.testing.assert_array_equal(vals_py, vals_c)
    hol_py = _best(
        lambda: holistic_segment_values(codes, values, MEDIAN, native=False)
    )
    hol_c = _best(
        lambda: holistic_segment_values(codes, values, MEDIAN, native=True)
    )

    batch = constant_rate_stream(n, num_keys=NUM_KEYS, rate=RATE, seed=3)
    events = scramble_batch(batch, MAX_LATENESS, seed=5)
    ts = np.array([e[0] for e in events], dtype=np.int64)
    keys = np.array([e[1] for e in events], dtype=np.int64)
    vals = np.array([e[2] for e in events], dtype=np.float64)

    def push(native):
        buf = ReorderBuffer(MAX_LATENESS)
        released = buf.push_batch(ts, keys, vals, native=native)
        return released, buf

    (rel_py, buf_py) = push(False)
    (rel_c, buf_c) = push(True)
    for a, b in zip(rel_py, rel_c):
        np.testing.assert_array_equal(a, b)
    assert buf_py.stats.accepted == buf_c.stats.accepted
    assert buf_py.stats.late_dropped == buf_c.stats.late_dropped
    push_py = _best(lambda: push(False), reps=3)
    push_c = _best(lambda: push(True), reps=3)

    return [
        {
            "kernel": "segment_reduce",
            "numpy_seconds": seg_py,
            "native_seconds": seg_c,
            "native_speedup": seg_py / seg_c,
        },
        {
            "kernel": "holistic_median",
            "numpy_seconds": hol_py,
            "native_seconds": hol_c,
            "native_speedup": hol_py / hol_c,
        },
        {
            "kernel": "reorder_push_batch",
            "numpy_seconds": push_py,
            "native_seconds": push_c,
            "native_speedup": push_py / push_c,
        },
    ]


def _engine_path(stream) -> dict:
    """Fifth engine path vs the NumPy pane path on a holistic plan."""
    plan = original_plan(
        WindowSet([Window(64 * 25, 25), Window(64 * 50, 50)]), MEDIAN
    )
    reference = execute_plan(plan, stream, engine="columnar-panes")
    native = execute_plan(plan, stream, engine="columnar-panes-native")
    assert results_equal(reference, native)
    panes = min(
        execute_plan(plan, stream, engine="columnar-panes")
        .stats.wall_seconds
        for _ in range(3)
    )
    native_wall = min(
        execute_plan(plan, stream, engine="columnar-panes-native")
        .stats.wall_seconds
        for _ in range(3)
    )
    return {
        "plan": "original/median",
        "panes_seconds": panes,
        "native_seconds": native_wall,
        "native_speedup": panes / native_wall,
    }


def _zero_copy_plane(n: int) -> dict:
    """Shared-memory session end-to-end copy accounting."""
    stream = constant_rate_stream(
        n, num_keys=NUM_KEYS, rate=RATE, seed=2
    )
    session = ShardedSession(
        num_keys=NUM_KEYS,
        num_shards=2,
        backend="shm",
        chunk_ticks=600,
        hysteresis=None,
    )
    try:
        session.register(Query("q", WindowSet([Window(300, 50)]), SUM))
        session.push_batch(stream)
        session.finish(horizon=stream.horizon)
        stats = session.stats()
    finally:
        session.close()
    return {
        "backend": "shm",
        "events": n,
        "bytes_copied": stats.bytes_copied,
        "bytes_copied_per_event": stats.bytes_copied / n,
        "copy_free_events": stats.copies_elided,
    }


def test_kernels_ablation_report(report_sink, bench_events):
    if not kernels.available():
        pytest.skip(
            f"compiled kernels unavailable: {kernels.availability_error()}"
        )
    n = max(bench_events, 30_000)
    micros = _kernel_micros(n)
    stream = constant_rate_stream(bench_events, seed=1)
    engine = _engine_path(stream)
    plane = _zero_copy_plane(bench_events)

    for row in micros:
        assert row["native_speedup"] > MIN_KERNEL_SPEEDUP, (
            f"{row['kernel']} native kernel failed to beat NumPy "
            f"({row['native_speedup']:.2f}x)"
        )
    assert engine["native_speedup"] > MIN_ENGINE_SPEEDUP, (
        f"columnar-panes-native failed to beat columnar-panes "
        f"({engine['native_speedup']:.2f}x)"
    )
    # The tentpole gate: at most one materializing copy per event
    # through partition -> ring -> shard core (steady state copies
    # nothing; only early borrow releases localize).
    assert plane["bytes_copied_per_event"] <= EVENT_BYTES, (
        f"zero-copy plane copied "
        f"{plane['bytes_copied_per_event']:.1f} bytes/event "
        f"(> {EVENT_BYTES} = one copy per event)"
    )

    rows = [
        (
            row["kernel"],
            f"{row['numpy_seconds'] * 1e3:,.2f}",
            f"{row['native_seconds'] * 1e3:,.2f}",
            f"{row['native_speedup']:.2f}x",
        )
        for row in micros
    ]
    rows.append(
        (
            "engine: " + engine["plan"],
            f"{engine['panes_seconds'] * 1e3:,.2f}",
            f"{engine['native_seconds'] * 1e3:,.2f}",
            f"{engine['native_speedup']:.2f}x",
        )
    )
    report_sink(
        "ablation_kernels",
        format_table(
            ["kernel", "NumPy ms", "native ms", "speedup"],
            rows,
            title=(
                f"Compiled hot kernels vs NumPy ({n:,} events/elements); "
                f"shm plane copied "
                f"{plane['bytes_copied_per_event']:.2f} bytes/event"
            ),
        ),
    )
    path = write_json_report(
        JSON_PATH,
        {
            "benchmark": "kernels",
            "events": n,
            "kernels": micros,
            "engine_path": engine,
            "zero_copy_plane": plane,
        },
    )
    assert path.exists()
