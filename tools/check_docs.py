#!/usr/bin/env python
"""Docs lint: every intra-repo link resolves, every snippet runs.

Checked files: ``README.md``, ``DESIGN.md``, ``ROADMAP.md``, and
everything under ``docs/``.

* **Links** — every relative markdown link target
  (``[text](path)`` / ``[text](path#anchor)``) must exist in the
  repository.  External schemes (``http(s)://``, ``mailto:``) and
  pure in-page anchors are skipped.
* **Snippets** — every fenced ```` ```python ```` block is executed
  in a fresh namespace with ``src/`` importable, exactly as a reader
  would run it.  Blocks that are illustrative rather than runnable
  should use a different info string (``pycon``, ``text``, ``bash``).
* **YAML** — every fenced ```` ```yaml ```` block must load through
  the dialect it documents: blocks with scenario sections go through
  the scenario loader (:func:`repro.scenarios.load_scenario`),
  everything else through the service's tenants-config loader
  (:func:`repro.service.load_tenants_config`) — so a documented
  example can always be pasted into ``session run`` / ``--config``
  unchanged.

Run from anywhere: ``python tools/check_docs.py``.  Exits non-zero on
the first category of failure, printing every offender.  CI runs this
as the ``docs-lint`` job; ``tests/test_docs.py`` runs it in tier-1.
"""

from __future__ import annotations

import re
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO / "README.md", REPO / "DESIGN.md", REPO / "ROADMAP.md"]
    + list((REPO / "docs").glob("*.md"))
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```(\w*)\s*$")
_EXTERNAL = ("http://", "https://", "mailto:")


def iter_links(text: str):
    for match in _LINK.finditer(text):
        yield match.group(1)


def iter_fenced_blocks(text: str, language: str):
    """Yield (first_line_number, source) for each ```<language> fence."""
    lines = text.splitlines()
    block: "list[str] | None" = None
    start = 0
    for i, line in enumerate(lines, start=1):
        fence = _FENCE.match(line.strip())
        if block is None:
            if fence and fence.group(1) == language:
                block, start = [], i + 1
        elif fence:
            yield start, "\n".join(block)
            block = None
        else:
            block.append(line)


def iter_python_blocks(text: str):
    """Yield (first_line_number, source) for each ```python fence."""
    yield from iter_fenced_blocks(text, "python")


def check_links() -> list[str]:
    problems = []
    for doc in DOC_FILES:
        text = doc.read_text()
        for target in iter_links(text):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO)}: broken link -> {target}"
                )
    return problems


def check_snippets() -> list[str]:
    problems = []
    src = str(REPO / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    for doc in DOC_FILES:
        for line, source in iter_python_blocks(doc.read_text()):
            where = f"{doc.relative_to(REPO)}:{line}"
            started = time.perf_counter()
            try:
                exec(  # noqa: S102 - the point of the lint
                    compile(source, where, "exec"), {"__name__": "__docs__"}
                )
            except BaseException as exc:  # noqa: BLE001 - reported
                problems.append(f"{where}: snippet failed: {exc!r}")
            else:
                print(
                    f"ok {where} "
                    f"({time.perf_counter() - started:.2f}s)"
                )
    return problems


def check_yaml_blocks() -> list[str]:
    """Every ```yaml block must load through the dialect it documents:
    scenario files (top-level scenario sections) through the scenario
    loader, everything else through the service's tenants-config
    loader — so any documented YAML can be pasted into the matching
    command unchanged."""
    problems = []
    src = str(REPO / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.scenarios import load_scenario
    from repro.scenarios.schema import _SECTIONS
    from repro.service import load_tenants_config
    from repro.service.quotas import parse_simple_yaml

    scenario_keys = {"name", "description", *_SECTIONS}
    for doc in DOC_FILES:
        for line, source in iter_fenced_blocks(doc.read_text(), "yaml"):
            where = f"{doc.relative_to(REPO)}:{line}"
            try:
                data = parse_simple_yaml(source)
                if isinstance(data, dict) and data.keys() & scenario_keys:
                    load_scenario(dict(data))
                    dialect = "scenario"
                else:
                    load_tenants_config(source)
                    dialect = "tenants config"
            except Exception as exc:  # noqa: BLE001 - reported
                problems.append(f"{where}: yaml block failed: {exc}")
            else:
                print(f"ok {where} ({dialect})")
    return problems


def main() -> int:
    missing = [d for d in DOC_FILES if not d.exists()]
    if missing:
        print("missing doc files:", ", ".join(map(str, missing)))
        return 1
    problems = check_links()
    problems += check_snippets()
    problems += check_yaml_blocks()
    for problem in problems:
        print(problem)
    if problems:
        print(f"\ndocs lint: {len(problems)} problem(s)")
        return 1
    print(f"docs lint: {len(DOC_FILES)} files clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
